//! Fixed-rate measurement runs and the saturation binary search.
//!
//! ## Why open-loop
//!
//! A closed-loop harness (issue the next request when the previous one
//! returns) silently slows its own offered rate when the server queues —
//! the coordinated-omission mistake — so its "p99 at N RPS" is really
//! "p99 at whatever rate the server allowed". The driver here reuses the
//! replayer's open-loop pacer: requests fire on schedule regardless of
//! outstanding responses, and when the pacer itself falls behind the
//! deficit is *booked* as dispatch lateness (its own measured stage with
//! a p99 acceptance bound), never hidden. A rung whose pacer lagged past
//! the bound is rejected as unsustained even if the server looked fine,
//! because the offered rate wasn't actually offered.
//!
//! ## Saturation search
//!
//! [`saturation_search`] is *pure over an injected measure function*: it
//! decides which rates to probe, the measure closure does the actual
//! load. That split is what makes the search unit-testable — drive it
//! with a deterministic synthetic server model and the probe sequence is
//! reproducible bit for bit ([`SearchConfig`] has no hidden randomness).
//! The strategy is bracket-then-bisect: double from `start_rps` until a
//! rung fails the criteria (or `max_rps` passes), then binary-search the
//! bracket down to `resolution_rps`.

use std::sync::atomic::AtomicBool;
use std::time::Instant;

use faasrail_loadgen::{
    fixed_rate_trace, replay_observed, ArrivalProcess, Backend, PaceGauge, Pacing, ReplayConfig,
    ReplayInstruments,
};
use faasrail_telemetry::{OutcomeClass, RingSink, TelemetryEvent};
use faasrail_workloads::{WorkloadId, WorkloadPool};

use super::report::{AcceptCriteria, QuantileAcc, RateRun, SaturationSummary, StageLatencies};

/// One fixed-rate rung's specification.
#[derive(Debug, Clone, Copy)]
pub struct FixedRateSpec {
    /// Offered rate, requests per second.
    pub rps: f64,
    /// How long to hold the rate, seconds.
    pub duration_s: f64,
    /// Replay worker threads.
    pub workers: usize,
    /// Arrival process for the synthetic trace.
    pub process: ArrivalProcess,
    /// Trace seed (arrival times for Poisson).
    pub seed: u64,
    /// Which pool workload every request invokes.
    pub workload: WorkloadId,
}

impl Default for FixedRateSpec {
    fn default() -> Self {
        FixedRateSpec {
            rps: 100.0,
            duration_s: 2.0,
            workers: 8,
            process: ArrivalProcess::Uniform,
            seed: 42,
            workload: WorkloadId(7),
        }
    }
}

/// Run one fixed-rate rung against a backend and fold the telemetry
/// stream into a [`RateRun`] with per-stage p50/p95/p99/p999.
///
/// `accepted` is stamped `true`; a saturation search re-stamps it from
/// its criteria.
pub fn run_fixed_rate<B: Backend>(
    backend: &B,
    pool: &WorkloadPool,
    spec: &FixedRateSpec,
) -> RateRun {
    let trace = fixed_rate_trace(spec.rps, spec.duration_s, spec.workload, spec.process, spec.seed);
    let n = trace.requests.len();
    // run_start + n invocation spans + run_end must all be retained.
    let sink = RingSink::with_capacity(n + 8);
    let pace = PaceGauge::new();
    let cfg = ReplayConfig { pacing: Pacing::RealTime { compression: 1.0 }, workers: spec.workers };
    let stop = AtomicBool::new(false);
    let inst = ReplayInstruments { sink: &sink, recorder: None, pace: Some(&pace) };

    let started = Instant::now();
    let metrics = replay_observed(&trace, pool, backend, &cfg, &stop, &inst);
    let wall_s = started.elapsed().as_secs_f64();
    debug_assert_eq!(sink.dropped(), 0, "bench sink must retain every span");

    let mut stages = StageAcc::default();
    for event in sink.events() {
        if let TelemetryEvent::Invocation(span) = event {
            stages.lateness.record(span.lateness_s());
            stages.queue_wait.record(span.queue_wait_s());
            stages.response.record(span.response_s());
            if span.outcome == OutcomeClass::Ok {
                stages.service.record(span.service_s());
                stages.overhead.record(span.overhead_s());
            }
        }
    }

    let offered = metrics.issued;
    let errors = metrics.errors;
    RateRun {
        target_rps: spec.rps,
        duration_s: spec.duration_s,
        offered,
        completed: metrics.completed,
        errors,
        achieved_rps: if wall_s > 0.0 { metrics.completed as f64 / wall_s } else { 0.0 },
        error_rate: if offered > 0 { errors as f64 / offered as f64 } else { 0.0 },
        accepted: true,
        stages: stages.finish(),
    }
}

#[derive(Default)]
struct StageAcc {
    lateness: QuantileAcc,
    queue_wait: QuantileAcc,
    service: QuantileAcc,
    overhead: QuantileAcc,
    response: QuantileAcc,
}

impl StageAcc {
    fn finish(&self) -> StageLatencies {
        StageLatencies {
            lateness: self.lateness.quantiles(),
            queue_wait: self.queue_wait.quantiles(),
            service: self.service.quantiles(),
            overhead: self.overhead.quantiles(),
            response: self.response.quantiles(),
        }
    }
}

/// Saturation search strategy parameters. Fully deterministic: the probe
/// sequence is a function of these values and the measure results alone.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// First rate probed; the bracket phase doubles from here.
    pub start_rps: f64,
    /// Hard ceiling — if this rate passes, the search reports it as the
    /// sustained maximum without probing further.
    pub max_rps: f64,
    /// Stop bisecting when the bracket is narrower than this.
    pub resolution_rps: f64,
    /// Safety cap on total probes (bracket + bisection).
    pub max_probes: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { start_rps: 64.0, max_rps: 65_536.0, resolution_rps: 16.0, max_probes: 24 }
    }
}

/// Binary-search the maximum sustained rate, probing via `measure`.
///
/// Returns the summary plus every probe rung in execution order (each
/// stamped with whether it met `criteria`). The search itself performs
/// no I/O and holds no randomness: given a deterministic `measure`, the
/// probe sequence and result are reproducible exactly.
pub fn saturation_search<F>(
    mut measure: F,
    criteria: &AcceptCriteria,
    cfg: &SearchConfig,
) -> (SaturationSummary, Vec<RateRun>)
where
    F: FnMut(f64) -> RateRun,
{
    assert!(cfg.start_rps > 0.0 && cfg.max_rps >= cfg.start_rps, "bad search bracket");
    let mut runs: Vec<RateRun> = Vec::new();
    let mut probe = |rps: f64, runs: &mut Vec<RateRun>| -> bool {
        let mut run = measure(rps);
        run.target_rps = rps;
        run.accepted = criteria.accepts(&run);
        let ok = run.accepted;
        runs.push(run);
        ok
    };

    // Bracket: double until a failure (or the ceiling passes).
    let mut lo = 0.0f64; // highest passing rate seen
    let mut hi: Option<f64> = None; // lowest failing rate seen
    let mut rps = cfg.start_rps;
    loop {
        if runs.len() >= cfg.max_probes {
            break;
        }
        if probe(rps, &mut runs) {
            lo = rps;
            if rps >= cfg.max_rps {
                break;
            }
            rps = (rps * 2.0).min(cfg.max_rps);
        } else {
            hi = Some(rps);
            break;
        }
    }

    // Bisect the bracket (lo passing, hi failing) down to resolution.
    if let Some(mut hi) = hi {
        while hi - lo > cfg.resolution_rps && runs.len() < cfg.max_probes {
            let mid = lo + (hi - lo) / 2.0;
            if probe(mid, &mut runs) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    let summary =
        SaturationSummary { max_sustained_rps: lo, criteria: *criteria, probes: runs.len() as u64 };
    (summary, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::report::LatencyQuantiles;

    /// A deterministic synthetic server: p99 grows past the knee, error
    /// rate climbs when well past it. Seeded "jitter" is a pure hash of
    /// the probed rate, so the model is noisy-looking but reproducible.
    fn model(knee_rps: f64, seed: u64) -> impl FnMut(f64) -> RateRun {
        move |rps: f64| {
            let jitter = {
                let mut z = seed ^ rps.to_bits();
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z >> 40) as f64 / (1u64 << 24) as f64 // [0, 1)
            };
            let load = rps / knee_rps;
            // The p99 steps past the 50 ms criterion exactly at the knee,
            // so the knee is the acceptance boundary the search must find.
            let p99 = if load < 1.0 { 5.0 + jitter } else { 60.0 + (load - 1.0) * 400.0 + jitter };
            let error_rate = if load > 1.5 { (load - 1.5) * 0.1 } else { 0.0 };
            RateRun {
                target_rps: rps,
                duration_s: 1.0,
                offered: rps as u64,
                completed: ((rps * (1.0 - error_rate)) as u64).min(rps as u64),
                errors: (rps * error_rate) as u64,
                achieved_rps: rps * (1.0 - error_rate),
                error_rate,
                accepted: false,
                stages: StageLatencies {
                    response: LatencyQuantiles {
                        count: rps as u64,
                        p99_ms: p99,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            }
        }
    }

    #[test]
    fn search_is_deterministic_under_a_seeded_workload() {
        let criteria =
            AcceptCriteria { p99_ms: 50.0, max_error_rate: 0.001, max_lateness_p99_ms: 1e9 };
        let cfg = SearchConfig {
            start_rps: 64.0,
            max_rps: 65_536.0,
            resolution_rps: 8.0,
            max_probes: 32,
        };
        let (a, runs_a) = saturation_search(model(3000.0, 0xfaa5), &criteria, &cfg);
        let (b, runs_b) = saturation_search(model(3000.0, 0xfaa5), &criteria, &cfg);
        assert_eq!(a, b, "same seed ⇒ identical summary");
        assert_eq!(runs_a, runs_b, "same seed ⇒ identical probe ladder");
        let probed: Vec<f64> = runs_a.iter().map(|r| r.target_rps).collect();
        assert_eq!(probed.len(), a.probes as usize);
        // Different seed shifts the jitter but must not move the result
        // past the knee: the found maximum brackets 3000 within resolution.
        let (c, _) = saturation_search(model(3000.0, 0x1234), &criteria, &cfg);
        assert!((a.max_sustained_rps - 3000.0).abs() < 3000.0 * 0.05, "{}", a.max_sustained_rps);
        assert!((c.max_sustained_rps - 3000.0).abs() < 3000.0 * 0.05, "{}", c.max_sustained_rps);
    }

    #[test]
    fn search_converges_within_resolution() {
        let criteria = AcceptCriteria { p99_ms: 50.0, ..Default::default() };
        let cfg = SearchConfig {
            start_rps: 100.0,
            max_rps: 100_000.0,
            resolution_rps: 4.0,
            max_probes: 64,
        };
        let (sum, runs) = saturation_search(model(7777.0, 1), &criteria, &cfg);
        assert!(
            (sum.max_sustained_rps - 7777.0).abs() <= 7777.0 * 0.02,
            "{}",
            sum.max_sustained_rps
        );
        // The final bracket is tighter than the resolution.
        let lowest_fail =
            runs.iter().filter(|r| !r.accepted).map(|r| r.target_rps).fold(f64::INFINITY, f64::min);
        assert!(lowest_fail - sum.max_sustained_rps <= cfg.resolution_rps + 1e-9);
    }

    #[test]
    fn all_passing_reports_ceiling_and_all_failing_reports_zero() {
        let criteria = AcceptCriteria { p99_ms: 50.0, ..Default::default() };
        let cfg =
            SearchConfig { start_rps: 10.0, max_rps: 100.0, resolution_rps: 1.0, max_probes: 32 };
        let (sum, _) = saturation_search(model(1e12, 1), &criteria, &cfg);
        assert_eq!(sum.max_sustained_rps, 100.0, "ceiling passes ⇒ report ceiling");
        let (sum, runs) = saturation_search(model(0.001, 1), &criteria, &cfg);
        assert_eq!(sum.max_sustained_rps, 0.0, "nothing passes ⇒ zero");
        assert!(runs.iter().all(|r| !r.accepted));
    }

    #[test]
    fn probe_count_respects_cap() {
        let criteria = AcceptCriteria::default();
        let cfg =
            SearchConfig { start_rps: 1.0, max_rps: 1e15, resolution_rps: 1e-9, max_probes: 9 };
        let (sum, runs) = saturation_search(model(1e18, 7), &criteria, &cfg);
        assert!(runs.len() <= 9);
        assert_eq!(sum.probes as usize, runs.len());
    }
}

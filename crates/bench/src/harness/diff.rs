//! Regression diffing between two `BenchReport`s.
//!
//! `faasrail bench diff OLD NEW` is the CI gate every perf PR runs
//! against the committed baseline: it compares the metrics the two
//! reports share, prints a markdown delta table, and (unless advisory)
//! fails past a configurable regression threshold.
//!
//! Two guards keep the gate honest rather than noisy:
//!
//! * **direction-aware** — every metric knows whether higher is better
//!   (sustained RPS, sim events/s) or lower is better (tail latencies,
//!   error rate); only changes in the *bad* direction can regress.
//! * **absolute floors** — a relative threshold alone flags 0.10 ms →
//!   0.12 ms as a "20% regression"; each metric carries an absolute
//!   floor below which changes are measurement noise by construction.
//!   A regression must clear both the relative threshold and the floor.
//!
//! `diff(A, A)` is therefore all-zero and can never fire, at any
//! threshold — property-tested in `tests/bench_e2e.rs`.

use super::report::{BenchReport, LatencyQuantiles};

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Dotted metric path, e.g. `runs[500rps].response.p99_ms`.
    pub metric: String,
    pub old: f64,
    pub new: f64,
    /// Direction: `true` if larger values are an improvement.
    pub higher_is_better: bool,
    /// Absolute change below which a difference is noise, in the
    /// metric's own unit.
    pub abs_floor: f64,
}

impl DiffRow {
    /// Signed absolute change (`new - old`).
    pub fn delta(&self) -> f64 {
        self.new - self.old
    }

    /// Signed relative change (`new/old - 1`); `0` when both are zero,
    /// `±inf` when only `old` is zero.
    pub fn delta_frac(&self) -> f64 {
        if self.old == 0.0 {
            if self.new == 0.0 {
                0.0
            } else if self.new > 0.0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            }
        } else {
            (self.new - self.old) / self.old.abs()
        }
    }

    /// Has this metric moved in the bad direction past both the
    /// relative `threshold` and the metric's absolute floor?
    pub fn regressed(&self, threshold: f64) -> bool {
        let bad_delta = if self.higher_is_better { -self.delta() } else { self.delta() };
        if bad_delta <= self.abs_floor {
            return false;
        }
        let bad_frac = if self.higher_is_better { -self.delta_frac() } else { self.delta_frac() };
        bad_frac > threshold
    }
}

/// The comparison of two reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchDiff {
    pub rows: Vec<DiffRow>,
    /// Metrics present in only one of the two reports (not comparable,
    /// listed so a vanished saturation section is visible, not silent).
    pub unmatched: Vec<String>,
}

impl BenchDiff {
    /// Rows that regressed past `threshold`.
    pub fn regressions(&self, threshold: f64) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.regressed(threshold)).collect()
    }

    /// Render the delta table, flagging regressions at `threshold`.
    pub fn to_markdown(&self, threshold: f64) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("| metric | old | new | Δ | Δ% | |\n");
        out.push_str("|:--|---:|---:|---:|---:|:--|\n");
        for row in &self.rows {
            let frac = row.delta_frac();
            let frac_s =
                if frac.is_finite() { format!("{:+.1}%", frac * 100.0) } else { "n/a".to_string() };
            let flag = if row.regressed(threshold) {
                "**regressed**"
            } else if row.delta() == 0.0 {
                "="
            } else {
                let improved = (row.delta() > 0.0) == row.higher_is_better;
                if improved {
                    "improved"
                } else {
                    "ok"
                }
            };
            out.push_str(&format!(
                "| {} | {:.3} | {:.3} | {:+.3} | {} | {} |\n",
                row.metric,
                row.old,
                row.new,
                row.delta(),
                frac_s,
                flag,
            ));
        }
        for name in &self.unmatched {
            out.push_str(&format!("| {name} | — | — | — | — | unmatched |\n"));
        }
        let n = self.regressions(threshold).len();
        out.push_str(&format!(
            "\n{} metric(s) compared, {} regression(s) at threshold {:.0}%\n",
            self.rows.len(),
            n,
            threshold * 100.0,
        ));
        out
    }
}

/// Latency floors: sub-quarter-millisecond movements in a tail statistic
/// are scheduler noise on any shared machine.
const LATENCY_FLOOR_MS: f64 = 0.25;
/// Error-rate floor: absolute 0.2 percentage points.
const ERROR_RATE_FLOOR: f64 = 0.002;

/// Compare two reports. Errors when the files measure different tiers —
/// a gateway-vs-sim diff is a usage mistake, not a regression signal.
pub fn diff_reports(old: &BenchReport, new: &BenchReport) -> Result<BenchDiff, String> {
    if old.tier != new.tier {
        return Err(format!(
            "cannot diff across tiers: OLD is {:?}, NEW is {:?}",
            old.tier, new.tier
        ));
    }
    let mut diff = BenchDiff::default();

    match (&old.saturation, &new.saturation) {
        (Some(o), Some(n)) => diff.rows.push(DiffRow {
            metric: "saturation.max_sustained_rps".to_string(),
            old: o.max_sustained_rps,
            new: n.max_sustained_rps,
            higher_is_better: true,
            abs_floor: 1.0,
        }),
        (Some(_), None) => diff.unmatched.push("saturation (only in OLD)".to_string()),
        (None, Some(_)) => diff.unmatched.push("saturation (only in NEW)".to_string()),
        (None, None) => {}
    }

    match (&old.sim, &new.sim) {
        (Some(o), Some(n)) => {
            diff.rows.push(DiffRow {
                metric: "sim.events_per_sec".to_string(),
                old: o.events_per_sec,
                new: n.events_per_sec,
                higher_is_better: true,
                abs_floor: 1.0,
            });
            diff.rows.push(DiffRow {
                metric: "sim.peak_rss_mb".to_string(),
                old: o.peak_rss_mb,
                new: n.peak_rss_mb,
                higher_is_better: false,
                abs_floor: 32.0,
            });
        }
        (Some(_), None) => diff.unmatched.push("sim (only in OLD)".to_string()),
        (None, Some(_)) => diff.unmatched.push("sim (only in NEW)".to_string()),
        (None, None) => {}
    }

    // Match fixed-rate rungs by target rate (first occurrence wins; a
    // saturation ladder probes each rate at most once).
    for o in &old.runs {
        let Some(n) = new.runs.iter().find(|n| n.target_rps == o.target_rps) else {
            diff.unmatched.push(format!("runs[{:.0}rps] (only in OLD)", o.target_rps));
            continue;
        };
        let tag = format!("runs[{:.0}rps]", o.target_rps);
        push_latency_rows(&mut diff, &tag, "response", &o.stages.response, &n.stages.response);
        diff.rows.push(DiffRow {
            metric: format!("{tag}.queue_wait.p99_ms"),
            old: o.stages.queue_wait.p99_ms,
            new: n.stages.queue_wait.p99_ms,
            higher_is_better: false,
            abs_floor: LATENCY_FLOOR_MS,
        });
        diff.rows.push(DiffRow {
            metric: format!("{tag}.error_rate"),
            old: o.error_rate,
            new: n.error_rate,
            higher_is_better: false,
            abs_floor: ERROR_RATE_FLOOR,
        });
        diff.rows.push(DiffRow {
            metric: format!("{tag}.achieved_rps"),
            old: o.achieved_rps,
            new: n.achieved_rps,
            higher_is_better: true,
            abs_floor: (o.achieved_rps * 0.02).max(1.0),
        });
    }
    for n in &new.runs {
        if !old.runs.iter().any(|o| o.target_rps == n.target_rps) {
            diff.unmatched.push(format!("runs[{:.0}rps] (only in NEW)", n.target_rps));
        }
    }

    Ok(diff)
}

fn push_latency_rows(
    diff: &mut BenchDiff,
    tag: &str,
    stage: &str,
    old: &LatencyQuantiles,
    new: &LatencyQuantiles,
) {
    for (q, o, n) in [
        ("p50_ms", old.p50_ms, new.p50_ms),
        ("p95_ms", old.p95_ms, new.p95_ms),
        ("p99_ms", old.p99_ms, new.p99_ms),
        ("p999_ms", old.p999_ms, new.p999_ms),
    ] {
        diff.rows.push(DiffRow {
            metric: format!("{tag}.{stage}.{q}"),
            old: o,
            new: n,
            higher_is_better: false,
            abs_floor: LATENCY_FLOOR_MS,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::report::{
        AcceptCriteria, BenchWorkload, QuantileAcc, RateRun, SaturationSummary, StageLatencies,
    };

    fn report_with(p99_ms: f64, sustained: f64) -> BenchReport {
        let workload = BenchWorkload {
            arrivals: "uniform".to_string(),
            duration_s: 1.0,
            workers: 4,
            seed: 42,
            target: "loopback".to_string(),
        };
        let mut r = BenchReport::new("t", "gateway", workload);
        let mut acc = QuantileAcc::new();
        acc.record(p99_ms / 1e3);
        let mut stages = StageLatencies { response: acc.quantiles(), ..Default::default() };
        stages.response.p99_ms = p99_ms;
        r.runs.push(RateRun {
            target_rps: 1000.0,
            duration_s: 1.0,
            offered: 1000,
            completed: 1000,
            errors: 0,
            achieved_rps: 1000.0,
            error_rate: 0.0,
            accepted: true,
            stages,
        });
        r.saturation = Some(SaturationSummary {
            max_sustained_rps: sustained,
            criteria: AcceptCriteria::default(),
            probes: 1,
        });
        r
    }

    #[test]
    fn self_diff_is_all_zero_and_never_fires() {
        let r = report_with(12.0, 4000.0);
        let d = diff_reports(&r, &r).unwrap();
        assert!(!d.rows.is_empty());
        assert!(d.rows.iter().all(|row| row.delta() == 0.0 && row.delta_frac() == 0.0));
        for t in [0.0, 0.001, 0.1, 1.0] {
            assert!(d.regressions(t).is_empty(), "threshold {t} fired on a self-diff");
        }
    }

    #[test]
    fn p99_regression_fires_past_threshold_only() {
        let old = report_with(10.0, 4000.0);
        let new = report_with(13.0, 4000.0); // +30%, +3ms
        let d = diff_reports(&old, &new).unwrap();
        let fired: Vec<&str> = d.regressions(0.10).iter().map(|r| r.metric.as_str()).collect();
        assert!(fired.iter().any(|m| m.contains("response.p99_ms")), "{fired:?}");
        assert!(d.regressions(0.50).is_empty(), "a 50% threshold must tolerate +30%");
    }

    #[test]
    fn improvement_never_fires_and_direction_matters() {
        let old = report_with(10.0, 4000.0);
        let faster = report_with(5.0, 8000.0);
        let d = diff_reports(&old, &faster).unwrap();
        assert!(d.regressions(0.01).is_empty(), "improvements are not regressions");
        // Reverse: sustained RPS halving is a regression (higher_is_better).
        let d = diff_reports(&faster, &old).unwrap();
        let fired: Vec<&str> = d.regressions(0.10).iter().map(|r| r.metric.as_str()).collect();
        assert!(fired.iter().any(|m| m.contains("max_sustained_rps")), "{fired:?}");
    }

    #[test]
    fn tiny_absolute_changes_are_noise() {
        let old = report_with(0.10, 4000.0);
        let new = report_with(0.15, 4000.0); // +50% but only +0.05ms
        let d = diff_reports(&old, &new).unwrap();
        assert!(d.regressions(0.10).is_empty(), "sub-floor absolute changes must not fire");
    }

    #[test]
    fn cross_tier_diff_is_refused() {
        let gw = report_with(1.0, 100.0);
        let mut sim = report_with(1.0, 100.0);
        sim.tier = "sim".to_string();
        assert!(diff_reports(&gw, &sim).is_err());
    }

    #[test]
    fn unmatched_sections_are_reported_not_dropped() {
        let with = report_with(1.0, 100.0);
        let mut without = report_with(1.0, 100.0);
        without.saturation = None;
        without.runs[0].target_rps = 2000.0;
        let d = diff_reports(&with, &without).unwrap();
        assert!(d.unmatched.iter().any(|u| u.contains("saturation")), "{:?}", d.unmatched);
        assert!(d.unmatched.iter().any(|u| u.contains("only in OLD")), "{:?}", d.unmatched);
        assert!(d.unmatched.iter().any(|u| u.contains("only in NEW")), "{:?}", d.unmatched);
        let md = d.to_markdown(0.1);
        assert!(md.contains("unmatched"), "{md}");
    }

    #[test]
    fn markdown_flags_regressions() {
        let old = report_with(10.0, 4000.0);
        let new = report_with(20.0, 4000.0);
        let d = diff_reports(&old, &new).unwrap();
        let md = d.to_markdown(0.10);
        assert!(md.contains("**regressed**"), "{md}");
        assert!(md.contains("regression(s) at threshold 10%"), "{md}");
    }
}

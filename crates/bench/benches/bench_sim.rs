//! Discrete-event simulator event throughput, plus a keep-alive ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasrail_core::{Request, RequestTrace};
use faasrail_faas_sim::{
    simulate, ClusterConfig, FixedTtl, GreedyDual, KeepAlivePolicy, LeastLoaded, LruPolicy,
    SimOptions,
};
use faasrail_stats::sampler::{Exponential, Sampler};
use faasrail_stats::seeded_rng;
use faasrail_workloads::{CostModel, WorkloadId, WorkloadPool};
use rand::Rng;

fn poisson_trace(n: usize, rate_rps: f64, seed: u64) -> RequestTrace {
    let mut rng = seeded_rng(seed);
    let gap = Exponential::from_mean(1_000.0 / rate_rps);
    let mut t = 0.0;
    let requests = (0..n)
        .map(|_| {
            t += gap.sample(&mut rng);
            let w = rng.gen_range(0..10u32);
            Request { at_ms: t as u64, workload: WorkloadId(w), function_index: w }
        })
        .collect();
    RequestTrace { duration_minutes: (t / 60_000.0) as usize + 1, requests }
}

type PolicyFactory = fn() -> Box<dyn KeepAlivePolicy>;

fn bench_sim(c: &mut Criterion) {
    let pool = WorkloadPool::vanilla(&CostModel::default_calibration());
    let trace = poisson_trace(20_000, 200.0, 5);

    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(trace.requests.len() as u64));

    let policies: [(&str, PolicyFactory); 3] = [
        ("fixed_ttl", || Box::new(FixedTtl::ten_minutes())),
        ("lru", || Box::new(LruPolicy)),
        ("greedy_dual", || Box::new(GreedyDual)),
    ];
    for (name, mk) in policies {
        group.bench_function(BenchmarkId::new("keepalive", name), |b| {
            b.iter(|| {
                let mut lb = LeastLoaded;
                let mut ka = mk();
                simulate(
                    &trace,
                    &pool,
                    &ClusterConfig::default(),
                    &mut lb,
                    ka.as_mut(),
                    &SimOptions::default(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);

//! Weighted-ECDF construction and inverse-transform sampling throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasrail_core::mapping::MappingConfig;
use faasrail_core::smirnov::{self, SmirnovConfig};
use faasrail_core::IatModel;
use faasrail_stats::ecdf::WeightedEcdf;
use faasrail_stats::seeded_rng;
use faasrail_trace::azure::{generate, AzureTraceConfig};
use faasrail_trace::summarize::invocations_duration_wecdf;
use faasrail_workloads::{CostModel, WorkloadPool};

fn bench_smirnov(c: &mut Criterion) {
    let trace = generate(&AzureTraceConfig::small(1));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());

    c.bench_function("smirnov/build_wecdf", |b| b.iter(|| invocations_duration_wecdf(&trace)));

    let wecdf: WeightedEcdf = invocations_duration_wecdf(&trace);
    let mut group = c.benchmark_group("smirnov/inverse_sampling");
    for n in [1_000usize, 10_000, 100_000] {
        group.throughput(criterion::Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = seeded_rng(7);
                wecdf.sample_n(&mut rng, n)
            });
        });
    }
    group.finish();

    c.bench_function("smirnov/end_to_end_20k", |b| {
        let cfg = SmirnovConfig {
            num_invocations: 20_000,
            rate_rps: 50.0,
            iat: IatModel::Poisson,
            mapping: MappingConfig::default(),
            seed: 3,
        };
        b.iter(|| smirnov::generate(&trace, &pool, &cfg));
    });
}

criterion_group!(benches, bench_smirnov);
criterion_main!(benches);

//! Load-generator dispatch throughput against a no-op backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasrail_core::{Request, RequestTrace};
use faasrail_loadgen::{replay, NoopBackend, Pacing, ReplayConfig};
use faasrail_workloads::{CostModel, WorkloadId, WorkloadPool};

fn trace_of(n: u64) -> RequestTrace {
    RequestTrace {
        duration_minutes: 1,
        requests: (0..n)
            .map(|i| Request { at_ms: 0, workload: WorkloadId((i % 10) as u32), function_index: 0 })
            .collect(),
    }
}

fn bench_loadgen(c: &mut Criterion) {
    let pool = WorkloadPool::vanilla(&CostModel::default_calibration());
    let mut group = c.benchmark_group("loadgen/unpaced_dispatch");
    group.sample_size(20);
    for workers in [1usize, 4, 8] {
        let trace = trace_of(20_000);
        group.throughput(criterion::Throughput::Elements(trace.requests.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let cfg = ReplayConfig { pacing: Pacing::Unpaced, workers: w };
            b.iter(|| replay(&trace, &pool, &NoopBackend, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_loadgen);
criterion_main!(benches);

//! Synthetic trace generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasrail_trace::azure::{generate, AzureTraceConfig};
use faasrail_trace::huawei::{generate as gen_huawei, HuaweiTraceConfig};

fn bench_trace_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_gen/azure");
    group.sample_size(10);
    for functions in [500usize, 2_000, 8_000] {
        group.throughput(criterion::Throughput::Elements(functions as u64));
        group.bench_with_input(BenchmarkId::from_parameter(functions), &functions, |b, &n| {
            let cfg = AzureTraceConfig::scaled(1, n, (n as u64) * 1_000);
            b.iter(|| generate(&cfg));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("trace_gen/huawei");
    group.sample_size(10);
    group.bench_function("small", |b| {
        let cfg = HuaweiTraceConfig::small(1);
        b.iter(|| gen_huawei(&cfg));
    });
    group.finish();
}

criterion_group!(benches, bench_trace_gen);
criterion_main!(benches);

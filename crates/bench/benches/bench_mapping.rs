//! Mapping-algorithm performance + threshold/strategy ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasrail_core::aggregate::{aggregate, DurationResolution};
use faasrail_core::mapping::{map_functions, BalanceStrategy, MappingConfig};
use faasrail_trace::azure::{generate, AzureTraceConfig};
use faasrail_workloads::{CostModel, WorkloadPool};

fn bench_mapping(c: &mut Criterion) {
    let trace = generate(&AzureTraceConfig::small(1));
    let agg = aggregate(&trace, DurationResolution::Millisecond);
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());

    let mut group = c.benchmark_group("mapping");
    group.throughput(criterion::Throughput::Elements(agg.len() as u64));

    for threshold in [0.01, 0.05, 0.10, 0.25, 0.50] {
        group.bench_with_input(
            BenchmarkId::new("threshold", format!("{threshold:.2}")),
            &threshold,
            |b, &t| {
                let cfg = MappingConfig { error_threshold: t, ..Default::default() };
                b.iter(|| map_functions(&agg, &pool, &cfg));
            },
        );
    }
    for (name, strategy) in [
        ("by_invocations", BalanceStrategy::ByInvocations),
        ("by_count", BalanceStrategy::ByFunctionCount),
        ("nearest_only", BalanceStrategy::NearestOnly),
    ] {
        group.bench_function(BenchmarkId::new("strategy", name), |b| {
            let cfg = MappingConfig { balance: strategy, ..Default::default() };
            b.iter(|| map_functions(&agg, &pool, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);

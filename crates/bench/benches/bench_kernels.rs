//! Warm execution time of each workload kernel — the calibration primitive
//! (paper §3.1.1's "register the Workloads execution times").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasrail_workloads::kernels::execute;
use faasrail_workloads::{WorkloadInput, WorkloadKind};

fn small_input(kind: WorkloadKind) -> WorkloadInput {
    match kind {
        WorkloadKind::Chameleon => WorkloadInput::Chameleon { rows: 200, cols: 8 },
        WorkloadKind::CnnServing => WorkloadInput::CnnServing { image_size: 32, filters: 8 },
        WorkloadKind::ImageProcessing => WorkloadInput::ImageProcessing { size: 128 },
        WorkloadKind::JsonSerdes => WorkloadInput::JsonSerdes { records: 500 },
        WorkloadKind::Matmul => WorkloadInput::Matmul { n: 64 },
        WorkloadKind::LrServing => WorkloadInput::LrServing { samples: 2_000, features: 64 },
        WorkloadKind::LrTraining => {
            WorkloadInput::LrTraining { epochs: 3, samples: 500, features: 32 }
        }
        WorkloadKind::Pyaes => WorkloadInput::Pyaes { bytes: 64 * 1024 },
        WorkloadKind::RnnServing => WorkloadInput::RnnServing { seq_len: 50, hidden: 64 },
        WorkloadKind::VideoProcessing => WorkloadInput::VideoProcessing { frames: 4, size: 128 },
        WorkloadKind::Compression => WorkloadInput::Compression { bytes: 64 * 1024 },
        WorkloadKind::GraphBfs => WorkloadInput::GraphBfs { vertices: 20_000, degree: 8 },
        WorkloadKind::PageRank => WorkloadInput::PageRank { vertices: 5_000, iters: 4 },
        WorkloadKind::SortData => WorkloadInput::SortData { elements: 50_000 },
        WorkloadKind::TextSearch => {
            WorkloadInput::TextSearch { haystack_bytes: 256 * 1024, patterns: 4 }
        }
        WorkloadKind::WordCount => WorkloadInput::WordCount { bytes: 128 * 1024 },
    }
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    for kind in WorkloadKind::ALL_SUITES {
        let input = small_input(kind);
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| execute(&input));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

//! Spec → timestamped request-stream expansion throughput, per IAT model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasrail_core::{generate_requests, shrink, IatModel, ShrinkRayConfig};
use faasrail_trace::azure::{generate, AzureTraceConfig};
use faasrail_workloads::{CostModel, WorkloadPool};

fn bench_request_gen(c: &mut Criterion) {
    let trace = generate(&AzureTraceConfig::small(1));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let (base_spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(120, 20.0)).unwrap();

    let mut group = c.benchmark_group("request_gen");
    group.throughput(criterion::Throughput::Elements(base_spec.total_requests()));
    for (name, iat) in [
        ("poisson", IatModel::Poisson),
        ("uniform", IatModel::UniformRandom),
        ("equidistant", IatModel::Equidistant),
    ] {
        let mut spec = base_spec.clone();
        spec.iat = iat;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| generate_requests(&spec, 9));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_request_gen);
criterion_main!(benches);

//! Empirical cumulative distribution functions, weighted and unweighted,
//! with inverse evaluation via linear interpolation.
//!
//! The weighted variant is the centrepiece of FaaSRail's Smirnov-transform
//! execution mode (paper §3.2.2): the empirical *invocation-weighted* CDF of
//! execution durations is built from `(avg_duration, invocation_count)`
//! pairs, and new samples are drawn by pushing uniform variates through the
//! linearly interpolated inverse CDF (inverse transform sampling).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Unweighted empirical CDF over a set of samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    /// Ascending-sorted samples (duplicates retained).
    points: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (need not be sorted; must be finite and non-empty).
    ///
    /// # Panics
    /// Panics on an empty or non-finite input.
    pub fn new(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "Ecdf requires at least one sample");
        assert!(samples.iter().all(|v| v.is_finite()), "Ecdf samples must be finite");
        let mut points = samples.to_vec();
        points.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Ecdf { points }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: construction rejects empty inputs.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sorted sample points.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// `F(x)`: fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.points.partition_point(|&p| p <= x);
        n as f64 / self.points.len() as f64
    }

    /// Right-continuous step quantile: smallest sample `v` with `F(v) >= q`.
    ///
    /// # Panics
    /// Panics unless `0 <= q <= 1`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if q == 0.0 {
            return self.points[0];
        }
        let idx = ((q * self.points.len() as f64).ceil() as usize).clamp(1, self.points.len());
        self.points[idx - 1]
    }

    /// Inverse CDF via linear interpolation between sorted samples,
    /// the construction FaaSRail borrows from statsmodels (paper §3.2.2).
    pub fn inverse_interp(&self, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "inverse argument {u} outside [0,1]");
        let n = self.points.len();
        if n == 1 {
            return self.points[0];
        }
        // Treat sample i (0-based) as sitting at height (i+1)/n; interpolate.
        let pos = u * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.points[lo]
        } else {
            let frac = pos - lo as f64;
            self.points[lo] + (self.points[hi] - self.points[lo]) * frac
        }
    }

    /// Smallest and largest sample.
    pub fn support(&self) -> (f64, f64) {
        (self.points[0], *self.points.last().expect("non-empty"))
    }

    /// Collapse to a weighted ECDF (each distinct value weighted by its
    /// multiplicity). Useful for the distance functions.
    pub fn to_weighted(&self) -> WeightedEcdf {
        WeightedEcdf::new(self.points.iter().map(|&v| (v, 1.0)))
    }
}

/// Weighted empirical CDF over `(value, weight)` pairs.
///
/// Duplicated values are merged by summing their weights; weights are
/// normalized internally. For FaaSRail, `value` is a Function's average warm
/// execution time and `weight` its number of invocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedEcdf {
    /// Distinct ascending values.
    values: Vec<f64>,
    /// `cum[i]` = normalized cumulative weight of `values[..=i]`; `cum.last() == 1`.
    cum: Vec<f64>,
    /// Total (un-normalized) weight.
    total_weight: f64,
}

impl WeightedEcdf {
    /// Build from `(value, weight)` pairs. Zero-weight pairs are dropped.
    ///
    /// # Panics
    /// Panics if no pair has positive weight, or on non-finite/negative input.
    pub fn new<I: IntoIterator<Item = (f64, f64)>>(pairs: I) -> Self {
        let mut pairs: Vec<(f64, f64)> = pairs
            .into_iter()
            .inspect(|&(v, w)| {
                assert!(v.is_finite(), "WeightedEcdf value must be finite, got {v}");
                assert!(w.is_finite() && w >= 0.0, "WeightedEcdf weight must be >= 0, got {w}");
            })
            .filter(|&(_, w)| w > 0.0)
            .collect();
        assert!(!pairs.is_empty(), "WeightedEcdf requires positive total weight");
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

        let mut values = Vec::with_capacity(pairs.len());
        let mut weights: Vec<f64> = Vec::with_capacity(pairs.len());
        for (v, w) in pairs {
            match values.last() {
                Some(&last) if last == v => *weights.last_mut().expect("non-empty") += w,
                _ => {
                    values.push(v);
                    weights.push(w);
                }
            }
        }
        let total_weight: f64 = weights.iter().sum();
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cum.push(acc / total_weight);
        }
        // Guard against floating-point drift at the top.
        *cum.last_mut().expect("non-empty") = 1.0;
        WeightedEcdf { values, cum, total_weight }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Distinct ascending values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Normalized cumulative weights aligned with [`Self::values`].
    pub fn cumulative(&self) -> &[f64] {
        &self.cum
    }

    /// Total un-normalized weight.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// `F(x)`: normalized weight of values `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.values.partition_point(|&v| v <= x);
        if n == 0 {
            0.0
        } else {
            self.cum[n - 1]
        }
    }

    /// Inverse CDF via linear interpolation between support points — the
    /// Smirnov transform of paper §3.2.2 / Fig. 5.
    ///
    /// For `u` at or below the first cumulative level the first value is
    /// returned (there is nothing to interpolate towards on the left).
    ///
    /// ```
    /// use faasrail_stats::ecdf::WeightedEcdf;
    /// // 75% of invocations take 10 ms, 25% take 100 ms.
    /// let cdf = WeightedEcdf::new([(10.0, 3.0), (100.0, 1.0)]);
    /// assert_eq!(cdf.inverse(0.5), 10.0);             // inside the first mass
    /// assert_eq!(cdf.inverse(1.0), 100.0);            // top of the support
    /// let mid = cdf.inverse(0.875);                   // halfway up the last step
    /// assert!((mid - 55.0).abs() < 1e-9);             // linear interpolation
    /// ```
    ///
    /// # Panics
    /// Panics unless `0 <= u <= 1`.
    pub fn inverse(&self, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "inverse argument {u} outside [0,1]");
        if u <= self.cum[0] {
            return self.values[0];
        }
        // First index with cum[idx] >= u; idx >= 1 here.
        let idx = self.cum.partition_point(|&c| c < u);
        let idx = idx.min(self.values.len() - 1);
        let (c0, c1) = (self.cum[idx - 1], self.cum[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        if c1 <= c0 {
            return v1;
        }
        v0 + (v1 - v0) * ((u - c0) / (c1 - c0))
    }

    /// Draw one value by inverse transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inverse(rng.gen::<f64>())
    }

    /// Draw `n` values by inverse transform sampling.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Smallest and largest support value.
    pub fn support(&self) -> (f64, f64) {
        (self.values[0], *self.values.last().expect("non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use proptest::prelude::*;

    #[test]
    fn ecdf_eval_basics() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn ecdf_quantile_steps() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.26), 20.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn ecdf_inverse_interp_midpoint() {
        let e = Ecdf::new(&[0.0, 10.0]);
        assert!((e.inverse_interp(0.5) - 5.0).abs() < 1e-12);
        assert_eq!(e.inverse_interp(0.0), 0.0);
        assert_eq!(e.inverse_interp(1.0), 10.0);
    }

    #[test]
    fn ecdf_singleton() {
        let e = Ecdf::new(&[7.0]);
        assert_eq!(e.inverse_interp(0.3), 7.0);
        assert_eq!(e.quantile(0.9), 7.0);
        assert_eq!(e.support(), (7.0, 7.0));
    }

    #[test]
    #[should_panic]
    fn ecdf_empty_panics() {
        Ecdf::new(&[]);
    }

    #[test]
    fn weighted_merges_duplicates() {
        let w = WeightedEcdf::new(vec![(1.0, 2.0), (1.0, 3.0), (2.0, 5.0)]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.total_weight(), 10.0);
        assert!((w.eval(1.0) - 0.5).abs() < 1e-12);
        assert_eq!(w.eval(2.0), 1.0);
        assert_eq!(w.eval(0.0), 0.0);
    }

    #[test]
    fn weighted_drops_zero_weights() {
        let w = WeightedEcdf::new(vec![(1.0, 0.0), (2.0, 1.0)]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.values(), &[2.0]);
    }

    #[test]
    #[should_panic]
    fn weighted_all_zero_panics() {
        WeightedEcdf::new(vec![(1.0, 0.0)]);
    }

    #[test]
    fn weighted_inverse_interpolates() {
        // values 0 and 10, weights 50/50: F(0)=0.5, F(10)=1.0.
        let w = WeightedEcdf::new(vec![(0.0, 1.0), (10.0, 1.0)]);
        assert_eq!(w.inverse(0.0), 0.0);
        assert_eq!(w.inverse(0.5), 0.0);
        assert!((w.inverse(0.75) - 5.0).abs() < 1e-12);
        assert_eq!(w.inverse(1.0), 10.0);
    }

    #[test]
    fn weighted_sampling_matches_weights() {
        // 90% of the mass at 1.0, 10% at 100.0. The interpolated inverse
        // returns exactly 1.0 for u <= 0.9 and spreads the remaining 10% of
        // the mass linearly across (1, 100].
        let w = WeightedEcdf::new(vec![(1.0, 9.0), (100.0, 1.0)]);
        let mut rng = seeded_rng(7);
        let n = 20_000;
        let samples = w.sample_n(&mut rng, n);
        let at_first = samples.iter().filter(|&&v| v <= 1.0).count();
        let frac = at_first as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "fraction at first support point was {frac}");
        // Mass between the support points follows the interpolation line:
        // P(v < 50) = 0.9 + 0.1 * (50-1)/(100-1) ≈ 0.9495.
        let below_mid = samples.iter().filter(|&&v| v < 50.0).count() as f64 / n as f64;
        assert!((below_mid - 0.9495).abs() < 0.02, "fraction below midpoint was {below_mid}");
    }

    #[test]
    fn ecdf_to_weighted_consistent() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0, 3.0]);
        let w = e.to_weighted();
        for &x in &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0] {
            assert!((e.eval(x) - w.eval(x)).abs() < 1e-12, "mismatch at {x}");
        }
    }

    proptest! {
        #[test]
        fn ecdf_eval_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..100), a in -1e3f64..1e3, b in -1e3f64..1e3) {
            let e = Ecdf::new(&xs);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.eval(lo) <= e.eval(hi));
        }

        #[test]
        fn weighted_inverse_monotone(
            pairs in proptest::collection::vec((0f64..1e4, 0.1f64..10.0), 1..50),
            u1 in 0f64..=1.0,
            u2 in 0f64..=1.0,
        ) {
            let w = WeightedEcdf::new(pairs);
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            prop_assert!(w.inverse(lo) <= w.inverse(hi) + 1e-9);
        }

        #[test]
        fn weighted_inverse_within_support(
            pairs in proptest::collection::vec((0f64..1e4, 0.1f64..10.0), 1..50),
            u in 0f64..=1.0,
        ) {
            let w = WeightedEcdf::new(pairs);
            let (lo, hi) = w.support();
            let v = w.inverse(u);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        #[test]
        fn weighted_eval_inverse_galois(
            pairs in proptest::collection::vec((0f64..1e4, 0.1f64..10.0), 2..50),
            u in 0.01f64..=1.0,
        ) {
            // eval(inverse(u)) >= u - epsilon: pushing the inverse back
            // through the CDF cannot lose mass (up to interpolation slack of
            // one support gap).
            let w = WeightedEcdf::new(pairs);
            let v = w.inverse(u);
            // find the next support point at or above v
            let idx = w.values().partition_point(|&x| x < v - 1e-12);
            let idx = idx.min(w.len() - 1);
            prop_assert!(w.cumulative()[idx] >= u - 1e-9);
        }

        #[test]
        fn ecdf_quantile_eval_roundtrip(xs in proptest::collection::vec(-1e3f64..1e3, 1..100), q in 0.01f64..=1.0) {
            let e = Ecdf::new(&xs);
            let v = e.quantile(q);
            prop_assert!(e.eval(v) >= q - 1e-9);
        }
    }
}

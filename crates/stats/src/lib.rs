//! Statistical substrate for FaaSRail.
//!
//! This crate implements, from scratch, every statistical primitive that the
//! FaaSRail methodology (HPDC '24) relies on:
//!
//! * [`Ecdf`] / [`WeightedEcdf`] — empirical cumulative distribution functions
//!   with inverse-CDF evaluation via linear interpolation, the core of the
//!   Smirnov-transform execution mode (paper §3.2.2);
//! * [`sampler`] — parametric samplers (exponential, Poisson, log-normal,
//!   Zipf, Pareto, Weibull) used both to synthesize trace-like data and to
//!   model sub-minute inter-arrival times (paper §3.2.1.3);
//! * [`distance`] — Kolmogorov–Smirnov and Wasserstein-1 distances used by the
//!   evaluation harness to quantify how close generated load tracks a trace;
//! * [`Summary`] — numerically stable streaming moments (Welford), including
//!   the coefficient of variation used for day selection (paper Fig. 3);
//! * [`timeseries`] — per-minute series manipulation: the Thumbnails rebinning
//!   (paper §3.2.1.2) and the largest-remainder apportionment used by request
//!   rate scaling (paper §3.2.1.1);
//! * [`histogram`] — linear and log-bucketed histograms (the latter doubles as
//!   the load generator's latency recorder).
//!
//! All randomness flows through caller-provided [`rand::Rng`] instances so
//! that every consumer of this crate is deterministic under a fixed seed.

pub mod distance;
pub mod ecdf;
pub mod histogram;
pub mod sampler;
pub mod special;
pub mod summary;
pub mod timeseries;

pub use distance::{ks_distance, ks_distance_weighted, wasserstein1};
pub use ecdf::{Ecdf, WeightedEcdf};
pub use histogram::{LinearHistogram, LogHistogram};
pub use summary::{percentile_sorted, Summary};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Construct the crate-standard deterministic RNG from a `u64` seed.
///
/// Every stochastic component in the FaaSRail workspace derives its
/// randomness from one of these, so a fixed seed reproduces a run exactly.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "seeds 1 and 2 should produce different streams");
    }
}

//! Distances between empirical distributions.
//!
//! The evaluation harness quantifies "how closely does FaaSRail-generated
//! load track the production trace" (paper Figs. 6, 9, 11) with the
//! Kolmogorov–Smirnov statistic and the Wasserstein-1 (earth mover's)
//! distance, both computed exactly over step-function ECDFs.

use crate::ecdf::{Ecdf, WeightedEcdf};

/// Kolmogorov–Smirnov statistic between two unweighted ECDFs:
/// `sup_x |F1(x) − F2(x)|`.
pub fn ks_distance(a: &Ecdf, b: &Ecdf) -> f64 {
    let wa = a.to_weighted();
    let wb = b.to_weighted();
    ks_distance_weighted(&wa, &wb)
}

/// Kolmogorov–Smirnov statistic between two weighted ECDFs.
///
/// Both ECDFs are right-continuous step functions, so the supremum is
/// attained at a support point of one of them.
pub fn ks_distance_weighted(a: &WeightedEcdf, b: &WeightedEcdf) -> f64 {
    let mut sup: f64 = 0.0;
    for &x in a.values().iter().chain(b.values()) {
        sup = sup.max((a.eval(x) - b.eval(x)).abs());
    }
    sup
}

/// Wasserstein-1 (earth mover's) distance between two weighted ECDFs:
/// `∫ |F1(x) − F2(x)| dx`, computed exactly over the union of breakpoints.
///
/// Unlike KS, this accounts for *how far* mass is displaced, which matters
/// when comparing execution-time distributions spanning orders of magnitude.
pub fn wasserstein1(a: &WeightedEcdf, b: &WeightedEcdf) -> f64 {
    let mut xs: Vec<f64> = a.values().iter().chain(b.values()).copied().collect();
    xs.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    xs.dedup();
    let mut acc = 0.0;
    for w in xs.windows(2) {
        let diff = (a.eval(w[0]) - b.eval(w[0])).abs();
        acc += diff * (w[1] - w[0]);
    }
    acc
}

/// Wasserstein-1 distance in log10 space: `∫ |F1 − F2| d(log10 x)`.
///
/// FaaS execution times span 2–4 orders of magnitude and the paper's CDF
/// plots use log-scaled x axes, so a discrepancy of 1 ms at the 10 ms scale
/// should weigh like a discrepancy of 100 ms at the 1 s scale. Requires
/// strictly positive support.
pub fn wasserstein1_log10(a: &WeightedEcdf, b: &WeightedEcdf) -> f64 {
    assert!(
        a.support().0 > 0.0 && b.support().0 > 0.0,
        "wasserstein1_log10 requires positive support"
    );
    let mut xs: Vec<f64> = a.values().iter().chain(b.values()).copied().collect();
    xs.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    xs.dedup();
    let mut acc = 0.0;
    for w in xs.windows(2) {
        let diff = (a.eval(w[0]) - b.eval(w[0])).abs();
        acc += diff * (w[1].log10() - w[0].log10());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w(pairs: &[(f64, f64)]) -> WeightedEcdf {
        WeightedEcdf::new(pairs.iter().copied())
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let a = w(&[(1.0, 1.0), (2.0, 3.0), (5.0, 1.0)]);
        assert_eq!(ks_distance_weighted(&a, &a), 0.0);
        assert_eq!(wasserstein1(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_point_masses_ks_is_one() {
        let a = w(&[(1.0, 1.0)]);
        let b = w(&[(2.0, 1.0)]);
        assert_eq!(ks_distance_weighted(&a, &b), 1.0);
        // All mass moves distance 1.
        assert!((wasserstein1(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_known_half() {
        // a: all mass at 1; b: half at 1, half at 2. F_a(1)=1, F_b(1)=0.5.
        let a = w(&[(1.0, 1.0)]);
        let b = w(&[(1.0, 1.0), (2.0, 1.0)]);
        assert!((ks_distance_weighted(&a, &b) - 0.5).abs() < 1e-12);
        assert!((wasserstein1(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_translation() {
        // Translating a distribution by d moves W1 by exactly d.
        let a = w(&[(1.0, 1.0), (2.0, 1.0), (3.0, 1.0)]);
        let b = w(&[(11.0, 1.0), (12.0, 1.0), (13.0, 1.0)]);
        assert!((wasserstein1(&a, &b) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ecdf_wrapper_consistent() {
        let ea = Ecdf::new(&[1.0, 2.0, 3.0]);
        let eb = Ecdf::new(&[1.0, 2.0, 4.0]);
        let d1 = ks_distance(&ea, &eb);
        let d2 = ks_distance_weighted(&ea.to_weighted(), &eb.to_weighted());
        assert_eq!(d1, d2);
    }

    #[test]
    fn log_distance_weighs_orders_of_magnitude() {
        // Mass at 1 vs 10: one decade apart → log distance 1.
        let a = w(&[(1.0, 1.0)]);
        let b = w(&[(10.0, 1.0)]);
        assert!((wasserstein1_log10(&a, &b) - 1.0).abs() < 1e-12);
        // Mass at 100 vs 1000 is also one decade → same log distance.
        let c = w(&[(100.0, 1.0)]);
        let d = w(&[(1000.0, 1.0)]);
        assert!((wasserstein1_log10(&c, &d) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn ks_is_symmetric_and_bounded(
            pa in proptest::collection::vec((0f64..100.0, 0.1f64..5.0), 1..30),
            pb in proptest::collection::vec((0f64..100.0, 0.1f64..5.0), 1..30),
        ) {
            let a = WeightedEcdf::new(pa);
            let b = WeightedEcdf::new(pb);
            let d1 = ks_distance_weighted(&a, &b);
            let d2 = ks_distance_weighted(&b, &a);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&d1));
        }

        #[test]
        fn wasserstein_symmetric_nonnegative(
            pa in proptest::collection::vec((0f64..100.0, 0.1f64..5.0), 1..30),
            pb in proptest::collection::vec((0f64..100.0, 0.1f64..5.0), 1..30),
        ) {
            let a = WeightedEcdf::new(pa);
            let b = WeightedEcdf::new(pb);
            let d1 = wasserstein1(&a, &b);
            let d2 = wasserstein1(&b, &a);
            prop_assert!((d1 - d2).abs() < 1e-9);
            prop_assert!(d1 >= 0.0);
        }

        #[test]
        fn wasserstein_triangle_inequality(
            pa in proptest::collection::vec((0f64..50.0, 0.1f64..5.0), 1..20),
            pb in proptest::collection::vec((0f64..50.0, 0.1f64..5.0), 1..20),
            pc in proptest::collection::vec((0f64..50.0, 0.1f64..5.0), 1..20),
        ) {
            let a = WeightedEcdf::new(pa);
            let b = WeightedEcdf::new(pb);
            let c = WeightedEcdf::new(pc);
            let ab = wasserstein1(&a, &b);
            let bc = wasserstein1(&b, &c);
            let ac = wasserstein1(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-9);
        }
    }
}

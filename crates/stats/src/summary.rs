//! Streaming summary statistics (Welford's algorithm) and percentile helpers.
//!
//! The FaaSRail methodology leans on two scalar statistics: the mean (trace
//! functions are keyed by their *average* warm execution time) and the
//! coefficient of variation (used to argue that a single trace day is a safe
//! sample — paper Fig. 3). Both are provided here with numerically stable
//! single-pass accumulation.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming moments over a sequence of `f64` samples.
///
/// Uses Welford's online algorithm, so it is safe for long streams of values
/// spanning several orders of magnitude (FaaS execution times span 2–4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// An empty summary. All statistics of an empty summary are `NaN` except
    /// [`Summary::count`], which is zero.
    pub fn new() -> Self {
        Summary { count: 0, mean: f64::NAN, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Build a summary from a slice in one pass.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "Summary::push requires finite values, got {x}");
        self.count += 1;
        if self.count == 1 {
            self.mean = x;
            self.m2 = 0.0;
        } else {
            let delta = x - self.mean;
            self.mean += delta / self.count as f64;
            let delta2 = x - self.mean;
            self.m2 += delta * delta2;
        }
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another summary into this one (parallel reduction support).
    ///
    /// Uses the Chan et al. pairwise update, so `a.merge(b)` equals pushing
    /// all of `b`'s observations into `a` up to floating-point error.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`NaN` when empty, `0` for a single observation).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (`NaN` for fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation: `std_dev / mean`.
    ///
    /// This is the statistic of paper Fig. 3 (per-function daily execution
    /// time and invocation counts across trace days). For a zero mean the CV
    /// is defined here as `0.0` when all samples are zero (a function that is
    /// never invoked is perfectly stable), `NaN` otherwise.
    pub fn cv(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.mean == 0.0 {
            return if self.m2 == 0.0 { 0.0 } else { f64::NAN };
        }
        self.std_dev() / self.mean.abs()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Linearly interpolated percentile of an ascending-sorted slice.
///
/// `q` is in `[0, 1]`. Uses the common "linear" (type-7) interpolation rule,
/// matching numpy's default, which the paper's analysis scripts use.
///
/// # Panics
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn percentile_sorted(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    debug_assert!(
        values.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted requires ascending input"
    );
    let n = values.len();
    if n == 1 {
        return values[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        values[lo]
    } else {
        let frac = pos - lo as f64;
        values[lo] + (values[hi] - values[lo]) * frac
    }
}

/// Convenience: sort a copy and take several percentiles at once.
pub fn percentiles(values: &[f64], qs: &[f64]) -> Vec<f64> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    qs.iter().map(|&q| percentile_sorted(&sorted, q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert!(s.cv().is_nan());
    }

    #[test]
    fn single_value() {
        let s = Summary::from_slice(&[5.0]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn known_moments() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn all_zero_cv_is_zero() {
        let s = Summary::from_slice(&[0.0, 0.0, 0.0]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 50.0 + 100.0).collect();
        let (a, b) = xs.split_at(37);
        let mut sa = Summary::from_slice(a);
        let sb = Summary::from_slice(b);
        sa.merge(&sb);
        let s = Summary::from_slice(&xs);
        assert_eq!(sa.count(), s.count());
        assert!((sa.mean() - s.mean()).abs() < 1e-9);
        assert!((sa.variance() - s.variance()).abs() < 1e-9);
        assert_eq!(sa.min(), s.min());
        assert_eq!(sa.max(), s.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 1.0), 4.0);
        assert!((percentile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_unsorted_input() {
        let v = [9.0, 1.0, 5.0];
        let ps = percentiles(&v, &[0.0, 0.5, 1.0]);
        assert_eq!(ps, vec![1.0, 5.0, 9.0]);
    }

    #[test]
    #[should_panic]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 0.5);
    }

    proptest! {
        #[test]
        fn welford_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::from_slice(&xs);
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var));
        }

        #[test]
        fn merge_is_associative_enough(
            a in proptest::collection::vec(0f64..1e3, 1..50),
            b in proptest::collection::vec(0f64..1e3, 1..50),
        ) {
            let mut m = Summary::from_slice(&a);
            m.merge(&Summary::from_slice(&b));
            let mut all = a.clone();
            all.extend_from_slice(&b);
            let s = Summary::from_slice(&all);
            prop_assert!((m.mean() - s.mean()).abs() < 1e-8 * (1.0 + s.mean().abs()));
            prop_assert!((m.variance() - s.variance()).abs() < 1e-6 * (1.0 + s.variance()));
        }

        #[test]
        fn percentile_monotone(
            mut xs in proptest::collection::vec(0f64..1e6, 2..100),
            q1 in 0f64..=1.0,
            q2 in 0f64..=1.0,
        ) {
            xs.sort_by(|x, y| x.partial_cmp(y).unwrap());
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(percentile_sorted(&xs, lo) <= percentile_sorted(&xs, hi) + 1e-9);
        }

        #[test]
        fn percentile_within_range(mut xs in proptest::collection::vec(-1e3f64..1e3, 1..100), q in 0f64..=1.0) {
            xs.sort_by(|x, y| x.partial_cmp(y).unwrap());
            let p = percentile_sorted(&xs, q);
            prop_assert!(p >= xs[0] - 1e-9 && p <= xs[xs.len()-1] + 1e-9);
        }
    }
}

//! Parametric samplers used throughout the workspace.
//!
//! Continuous: [`Exponential`], [`LogNormal`], [`Pareto`], [`Weibull`],
//! [`UniformRange`]. Discrete: [`Poisson`] (Knuth for small rates, Hörmann's
//! PTRS transformed rejection for large), [`Zipf`] (Hörmann–Derflinger
//! rejection-inversion).
//!
//! Exponential inter-arrival delays model FaaSRail's sub-minute Poisson
//! arrivals (paper §3.2.1.3); Zipf drives the skewed function popularity of
//! the synthetic traces; log-normal shapes execution-time and memory
//! distributions.

use crate::special::{ln_gamma, normal_inv_cdf};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A continuous distribution that can be sampled with any RNG.
pub trait Sampler {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draw `n` values.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Draw a uniform variate in the open interval `(0, 1)`.
#[inline]
fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = rng.gen::<f64>();
        if u > 0.0 {
            return u;
        }
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// # Panics
    /// Panics unless `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "Exponential rate must be positive");
        Exponential { lambda }
    }

    /// Construct from the desired mean (`1/lambda`).
    pub fn from_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Sampler for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -open_unit(rng).ln() / self.lambda
    }
}

/// Log-normal distribution, parameterized by the mean `mu` and standard
/// deviation `sigma` of the underlying normal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// # Panics
    /// Panics unless `sigma >= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "LogNormal sigma must be >= 0");
        LogNormal { mu, sigma }
    }

    /// Fit from a target median and a target p90 quantile (`p90 >= median`).
    ///
    /// The synthetic trace generators are specified in terms of quantiles
    /// published in the traces' papers, so this is the natural constructor.
    pub fn from_median_p90(median: f64, p90: f64) -> Self {
        assert!(median > 0.0 && p90 >= median, "need 0 < median <= p90");
        let mu = median.ln();
        let z90 = normal_inv_cdf(0.9);
        let sigma = (p90.ln() - mu) / z90;
        Self::new(mu, sigma)
    }

    /// Median of the distribution (`e^mu`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Quantile function.
    pub fn quantile(&self, q: f64) -> f64 {
        (self.mu + self.sigma * normal_inv_cdf(q)).exp()
    }
}

impl Sampler for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-transform through the underlying normal: stateless and
        // reproducible regardless of call interleaving.
        let u = open_unit(rng).min(1.0 - f64::EPSILON);
        (self.mu + self.sigma * normal_inv_cdf(u)).exp()
    }
}

/// Pareto (power-law tail) distribution with scale `x_m` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    x_m: f64,
    alpha: f64,
}

impl Pareto {
    /// # Panics
    /// Panics unless `x_m > 0` and `alpha > 0`.
    pub fn new(x_m: f64, alpha: f64) -> Self {
        assert!(x_m > 0.0 && alpha > 0.0, "Pareto requires positive scale and shape");
        Pareto { x_m, alpha }
    }
}

impl Sampler for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.x_m / open_unit(rng).powf(1.0 / self.alpha)
    }
}

/// Weibull distribution with scale `lambda` and shape `k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    lambda: f64,
    k: f64,
}

impl Weibull {
    /// # Panics
    /// Panics unless both parameters are positive.
    pub fn new(lambda: f64, k: f64) -> Self {
        assert!(lambda > 0.0 && k > 0.0, "Weibull requires positive parameters");
        Weibull { lambda, k }
    }
}

impl Sampler for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lambda * (-open_unit(rng).ln()).powf(1.0 / self.k)
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// # Panics
    /// Panics unless `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "UniformRange requires lo < hi");
        UniformRange { lo, hi }
    }
}

impl Sampler for UniformRange {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * rng.gen::<f64>()
    }
}

/// Gamma distribution with shape `k` and scale `theta`.
///
/// Marsaglia–Tsang squeeze method for `k >= 1`, with the standard
/// `U^{1/k}` boost for `k < 1`. Used by the doubly-stochastic (bursty)
/// arrival model: per-interval rate multipliers are Gamma(k, 1/k) draws,
/// giving mean 1 and CV `1/sqrt(k)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    k: f64,
    theta: f64,
}

impl Gamma {
    /// # Panics
    /// Panics unless both parameters are positive.
    pub fn new(k: f64, theta: f64) -> Self {
        assert!(k > 0.0 && theta > 0.0, "Gamma requires positive parameters");
        Gamma { k, theta }
    }

    /// Unit-mean multiplier distribution with the given coefficient of
    /// variation: `Gamma(1/cv², cv²)`.
    pub fn unit_mean_with_cv(cv: f64) -> Self {
        assert!(cv > 0.0, "CV must be positive");
        let k = 1.0 / (cv * cv);
        Gamma::new(k, 1.0 / k)
    }

    fn sample_shape_ge1<R: Rng + ?Sized>(k: f64, rng: &mut R) -> f64 {
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = normal_inv_cdf(open_unit(rng).min(1.0 - f64::EPSILON));
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = open_unit(rng);
            // Squeeze, then full acceptance test.
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Sampler for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let raw = if self.k >= 1.0 {
            Self::sample_shape_ge1(self.k, rng)
        } else {
            // Johnk/boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
            Self::sample_shape_ge1(self.k + 1.0, rng) * open_unit(rng).powf(1.0 / self.k)
        };
        raw * self.theta
    }
}

/// Poisson distribution with rate `lambda`.
///
/// Uses Knuth's product method for `lambda < 30` and Hörmann's PTRS
/// (transformed rejection with squeeze) for larger rates, so drawing
/// per-minute invocation counts with rates in the hundreds of thousands
/// (Azure's busiest minutes) stays O(1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// # Panics
    /// Panics unless `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "Poisson rate must be positive");
        Poisson { lambda }
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draw one count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            self.sample_knuth(rng)
        } else {
            self.sample_ptrs(rng)
        }
    }

    fn sample_knuth<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Hörmann (1993), "The transformed rejection method for generating
    /// Poisson random variables", algorithm PTRS.
    fn sample_ptrs<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lam = self.lambda;
        let log_lam = lam.ln();
        let b = 0.931 + 2.53 * lam.sqrt();
        let a = -0.059 + 0.024_83 * b;
        let inv_alpha = 1.123_9 + 1.132_8 / (b - 3.4);
        let v_r = 0.927_7 - 3.622_4 / (b - 2.0);
        loop {
            let u = rng.gen::<f64>() - 0.5;
            let v = open_unit(rng);
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + lam + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k as u64;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            if (v * inv_alpha / (a / (us * us) + b)).ln() <= k * log_lam - lam - ln_gamma(k + 1.0) {
                return k as u64;
            }
        }
    }
}

/// Zipf distribution over `{1, …, n}` with exponent `s`: `P(k) ∝ k^−s`.
///
/// Exact sampling via Hörmann–Derflinger rejection-inversion; O(1) per draw
/// for any `n`, which matters when drawing popularity ranks over tens of
/// thousands of trace functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x0: f64,
    h_n: f64,
}

impl Zipf {
    /// # Panics
    /// Panics unless `n >= 1` and `s > 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf requires n >= 1");
        assert!(s > 0.0 && s.is_finite(), "Zipf requires s > 0");
        let mut z = Zipf { n, s, h_x0: 0.0, h_n: 0.0 };
        z.h_x0 = z.h(0.5);
        z.h_n = z.h(n as f64 + 0.5);
        z
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Primitive of `x^{-s}`.
    fn h(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
        }
    }

    fn h_inv(&self, y: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            y.exp()
        } else {
            (1.0 + y * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draw one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            let u = self.h_x0 + rng.gen::<f64>() * (self.h_n - self.h_x0);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            // Accept iff u >= H(k + 1/2) − k^−s; the midpoint rule for the
            // convex decreasing density guarantees the acceptance region is
            // non-empty and the accepted k is exactly Zipf-distributed.
            if u >= self.h(k + 0.5) - k.powf(-self.s) {
                return k as u64;
            }
        }
    }

    /// The normalized probability of rank `k` (for tests / analysis).
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n);
        let norm: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use crate::summary::Summary;
    use proptest::prelude::*;

    #[test]
    fn exponential_mean() {
        let d = Exponential::from_mean(4.0);
        let mut rng = seeded_rng(1);
        let s = Summary::from_slice(&d.sample_n(&mut rng, 50_000));
        assert!((s.mean() - 4.0).abs() < 0.1, "mean = {}", s.mean());
        assert!(s.min() > 0.0);
    }

    #[test]
    fn exponential_cv_is_one() {
        let d = Exponential::new(2.5);
        let mut rng = seeded_rng(2);
        let s = Summary::from_slice(&d.sample_n(&mut rng, 50_000));
        assert!((s.cv() - 1.0).abs() < 0.05, "cv = {}", s.cv());
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::from_median_p90(100.0, 1000.0);
        assert!((d.median() - 100.0).abs() < 1e-9);
        let mut rng = seeded_rng(3);
        let mut xs = d.sample_n(&mut rng, 40_000);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med / 100.0 - 1.0).abs() < 0.05, "median = {med}");
        let p90 = xs[(xs.len() as f64 * 0.9) as usize];
        assert!((p90 / 1000.0 - 1.0).abs() < 0.1, "p90 = {p90}");
    }

    #[test]
    fn lognormal_quantile_consistency() {
        let d = LogNormal::new(2.0, 0.7);
        assert!((d.quantile(0.5) - d.median()).abs() < 1e-9);
        assert!(d.quantile(0.1) < d.quantile(0.9));
    }

    #[test]
    fn pareto_minimum_is_scale() {
        let d = Pareto::new(5.0, 2.0);
        let mut rng = seeded_rng(4);
        let s = Summary::from_slice(&d.sample_n(&mut rng, 10_000));
        assert!(s.min() >= 5.0);
        // E[X] = alpha x_m / (alpha - 1) = 10
        assert!((s.mean() - 10.0).abs() < 0.6, "mean = {}", s.mean());
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Weibull::new(3.0, 1.0);
        let mut rng = seeded_rng(5);
        let s = Summary::from_slice(&d.sample_n(&mut rng, 50_000));
        assert!((s.mean() - 3.0).abs() < 0.1);
        assert!((s.cv() - 1.0).abs() < 0.05);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = UniformRange::new(-2.0, 6.0);
        let mut rng = seeded_rng(6);
        let s = Summary::from_slice(&d.sample_n(&mut rng, 20_000));
        assert!(s.min() >= -2.0 && s.max() < 6.0);
        assert!((s.mean() - 2.0).abs() < 0.1);
    }

    #[test]
    fn gamma_moments() {
        // Gamma(k, θ): mean kθ, variance kθ².
        let d = Gamma::new(4.0, 0.5);
        let mut rng = seeded_rng(40);
        let s = Summary::from_slice(&d.sample_n(&mut rng, 50_000));
        assert!((s.mean() - 2.0).abs() < 0.03, "mean = {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.05, "var = {}", s.variance());
    }

    #[test]
    fn gamma_small_shape() {
        let d = Gamma::new(0.4, 1.0);
        let mut rng = seeded_rng(41);
        let s = Summary::from_slice(&d.sample_n(&mut rng, 50_000));
        assert!((s.mean() - 0.4).abs() < 0.02, "mean = {}", s.mean());
        assert!(s.min() > 0.0);
    }

    #[test]
    fn gamma_unit_mean_cv() {
        for cv in [0.5, 1.0, 2.0] {
            let d = Gamma::unit_mean_with_cv(cv);
            let mut rng = seeded_rng(42);
            let s = Summary::from_slice(&d.sample_n(&mut rng, 80_000));
            assert!((s.mean() - 1.0).abs() < 0.05, "cv={cv}: mean = {}", s.mean());
            assert!((s.cv() - cv).abs() < 0.15, "cv={cv}: measured {}", s.cv());
        }
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let d = Poisson::new(3.5);
        let mut rng = seeded_rng(7);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng) as f64).collect();
        let s = Summary::from_slice(&xs);
        assert!((s.mean() - 3.5).abs() < 0.08, "mean = {}", s.mean());
        assert!((s.variance() - 3.5).abs() < 0.2, "var = {}", s.variance());
    }

    #[test]
    fn poisson_large_lambda_moments() {
        // Exercises the PTRS path.
        let d = Poisson::new(5000.0);
        let mut rng = seeded_rng(8);
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng) as f64).collect();
        let s = Summary::from_slice(&xs);
        assert!((s.mean() / 5000.0 - 1.0).abs() < 0.01, "mean = {}", s.mean());
        assert!((s.variance() / 5000.0 - 1.0).abs() < 0.1, "var = {}", s.variance());
    }

    #[test]
    fn poisson_boundary_lambda() {
        // Right at the Knuth/PTRS boundary both paths must be sane.
        for lam in [29.9, 30.0, 30.1] {
            let d = Poisson::new(lam);
            let mut rng = seeded_rng(9);
            let xs: Vec<f64> = (0..30_000).map(|_| d.sample(&mut rng) as f64).collect();
            let s = Summary::from_slice(&xs);
            assert!((s.mean() / lam - 1.0).abs() < 0.03, "lambda={lam} mean={}", s.mean());
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Zipf::new(1000, 1.5);
        let mut rng = seeded_rng(10);
        let n = 100_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1).count();
        let expect = d.pmf(1);
        let got = ones as f64 / n as f64;
        assert!((got - expect).abs() < 0.01, "P(1): got {got}, want {expect}");
    }

    #[test]
    fn zipf_empirical_pmf_matches() {
        let d = Zipf::new(50, 1.0);
        let mut rng = seeded_rng(11);
        let n = 200_000usize;
        let mut counts = vec![0u64; 51];
        for _ in 0..n {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        for k in [1u64, 2, 5, 10, 25, 50] {
            let got = counts[k as usize] as f64 / n as f64;
            let want = d.pmf(k);
            assert!((got - want).abs() < 0.01 + want * 0.1, "P({k}): got {got}, want {want}");
        }
    }

    #[test]
    fn zipf_n_one_always_one() {
        let d = Zipf::new(1, 2.0);
        let mut rng = seeded_rng(12);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn zipf_exponent_one_special_case() {
        let d = Zipf::new(100, 1.0);
        let mut rng = seeded_rng(13);
        for _ in 0..10_000 {
            let k = d.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn zipf_in_range(n in 1u64..10_000, s in 0.2f64..3.0, seed in 0u64..1000) {
            let d = Zipf::new(n, s);
            let mut rng = seeded_rng(seed);
            for _ in 0..50 {
                let k = d.sample(&mut rng);
                prop_assert!(k >= 1 && k <= n);
            }
        }

        #[test]
        fn poisson_nonnegative_finite(lam in 0.01f64..10_000.0, seed in 0u64..1000) {
            let d = Poisson::new(lam);
            let mut rng = seeded_rng(seed);
            let k = d.sample(&mut rng);
            // loose sanity bound: 10 sigma above the mean
            prop_assert!((k as f64) < lam + 10.0 * lam.sqrt() + 50.0);
        }

        #[test]
        fn exponential_positive(mean in 0.001f64..1e6, seed in 0u64..1000) {
            let d = Exponential::from_mean(mean);
            let mut rng = seeded_rng(seed);
            prop_assert!(d.sample(&mut rng) > 0.0);
        }

        #[test]
        fn lognormal_positive(mu in -5f64..10.0, sigma in 0f64..3.0, seed in 0u64..1000) {
            let d = LogNormal::new(mu, sigma);
            let mut rng = seeded_rng(seed);
            let x = d.sample(&mut rng);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }
}

//! Per-minute time-series manipulation.
//!
//! Implements the two discrete resampling operations at the heart of the
//! shrink ray: the **Thumbnails** rebinning (paper §3.2.1.2 — aggregate
//! adjacent minutes by summing) and **largest-remainder apportionment**,
//! which the request-rate scaler (paper §3.2.1.1) uses to scale integer
//! counts to a target total without drift: the scaled counts always sum to
//! exactly the requested total, and each element differs from its exact
//! proportional quota by less than one.

use crate::summary::Summary;

/// Rebin a series into `groups` buckets by summation (Thumbnails mode).
///
/// When `groups` does not divide `series.len()`, bucket boundaries are placed
/// at `round(i · len / groups)` so bucket sizes differ by at most one and the
/// total is preserved exactly.
///
/// ```
/// use faasrail_stats::timeseries::rebin_sum;
/// // Thumbnails: a 6-minute day into a 3-minute experiment.
/// assert_eq!(rebin_sum(&[1, 2, 3, 4, 5, 6], 3), vec![3, 7, 11]);
/// ```
///
/// # Panics
/// Panics if `groups == 0` or `groups > series.len()`.
pub fn rebin_sum(series: &[u64], groups: usize) -> Vec<u64> {
    assert!(groups > 0, "rebin_sum requires at least one group");
    assert!(groups <= series.len(), "cannot rebin {} points into {} groups", series.len(), groups);
    let n = series.len();
    let mut out = Vec::with_capacity(groups);
    for g in 0..groups {
        let lo = g * n / groups;
        let hi = (g + 1) * n / groups;
        out.push(series[lo..hi].iter().sum());
    }
    out
}

/// Normalize a series to its peak: every element divided by the maximum.
/// An all-zero series maps to all zeros.
pub fn normalize_peak(series: &[u64]) -> Vec<f64> {
    let peak = series.iter().copied().max().unwrap_or(0);
    if peak == 0 {
        return vec![0.0; series.len()];
    }
    series.iter().map(|&v| v as f64 / peak as f64).collect()
}

/// Scale `counts` proportionally so the result sums to exactly `target_total`,
/// using the largest-remainder (Hamilton) method.
///
/// Every output element `o_i` satisfies `|o_i − c_i · T / Σc| < 1`, so the
/// *shape* of the series is preserved as faithfully as integer counts allow.
/// Ties in fractional remainders break toward lower index (deterministic).
///
/// An all-zero input with a nonzero target panics: there is no proportional
/// way to place requests on a silent series.
///
/// ```
/// use faasrail_stats::timeseries::apportion_largest_remainder;
/// // Scale a 900/90/10 minute down to 100 requests: shares survive exactly.
/// assert_eq!(apportion_largest_remainder(&[900, 90, 10], 100), vec![90, 9, 1]);
/// ```
pub fn apportion_largest_remainder(counts: &[u64], target_total: u64) -> Vec<u64> {
    let total: u128 = counts.iter().map(|&c| c as u128).sum();
    if target_total == 0 {
        return vec![0; counts.len()];
    }
    assert!(total > 0, "cannot apportion {target_total} requests over an all-zero series");

    let t = target_total as u128;
    let mut out = vec![0u64; counts.len()];
    // quota_i = c_i * t / total; track remainders exactly in u128.
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(counts.len());
    let mut assigned: u128 = 0;
    for (i, &c) in counts.iter().enumerate() {
        let num = c as u128 * t;
        let q = num / total;
        let r = num % total;
        out[i] = q as u64;
        assigned += q;
        remainders.push((r, i));
    }
    let mut leftover = (t - assigned) as usize;
    // Largest remainder first; ties toward lower index.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(r, i) in &remainders {
        if leftover == 0 {
            break;
        }
        if r == 0 {
            // Only zero remainders left — exact division, nothing to hand out.
            break;
        }
        out[i] += 1;
        leftover -= 1;
    }
    debug_assert_eq!(out.iter().map(|&v| v as u128).sum::<u128>(), t);
    out
}

/// Apportion `target_total` integer units proportionally to float `weights`
/// (largest-remainder method, ties toward lower index).
///
/// The float analogue of [`apportion_largest_remainder`]; used by the
/// synthetic trace generators to convert popularity weights into integer
/// invocation counts whose sum is exact.
///
/// # Panics
/// Panics if the weights are negative/non-finite, or all zero while
/// `target_total > 0`.
pub fn apportion_weights(weights: &[f64], target_total: u64) -> Vec<u64> {
    assert!(
        weights.iter().all(|&w| w.is_finite() && w >= 0.0),
        "weights must be finite and non-negative"
    );
    if target_total == 0 {
        return vec![0; weights.len()];
    }
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "cannot apportion {target_total} units over all-zero weights");

    let t = target_total as f64;
    let mut out = vec![0u64; weights.len()];
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let quota = w / total * t;
        let q = quota.floor();
        out[i] = q as u64;
        assigned += q as u64;
        remainders.push((quota - q, i));
    }
    let mut leftover = target_total.saturating_sub(assigned) as usize;
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
    for &(_, i) in &remainders {
        if leftover == 0 {
            break;
        }
        out[i] += 1;
        leftover -= 1;
    }
    debug_assert_eq!(out.iter().sum::<u64>(), target_total);
    out
}

/// Simple centered-window moving average (window truncated at the edges).
///
/// # Panics
/// Panics if `window == 0`.
pub fn moving_average(series: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "moving_average requires window >= 1");
    let n = series.len();
    let half = window / 2;
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Fano factor (variance-to-mean ratio) of a count series — a standard
/// burstiness index: 1 for a Poisson process, > 1 for bursty arrivals.
/// Returns `NaN` for an empty or all-zero series.
pub fn fano_factor(series: &[u64]) -> f64 {
    if series.is_empty() {
        return f64::NAN;
    }
    let s = Summary::from_slice(&series.iter().map(|&v| v as f64).collect::<Vec<_>>());
    if s.mean() == 0.0 {
        return f64::NAN;
    }
    s.variance() / s.mean()
}

/// Index and value of the series maximum (first occurrence).
/// Returns `None` for an empty series.
pub fn peak(series: &[u64]) -> Option<(usize, u64)> {
    series.iter().enumerate().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0))).map(|(i, &v)| (i, v))
}

/// Lag-`k` autocorrelation of a series (Pearson, biased denominator).
/// Returns `NaN` when undefined (constant series or too short).
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    let n = series.len();
    if lag >= n {
        return f64::NAN;
    }
    let s = Summary::from_slice(series);
    let mean = s.mean();
    let denom: f64 = series.iter().map(|x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        return f64::NAN;
    }
    let num: f64 = (0..n - lag).map(|i| (series[i] - mean) * (series[i + lag] - mean)).sum();
    num / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rebin_exact_divisor() {
        let s = [1, 2, 3, 4, 5, 6];
        assert_eq!(rebin_sum(&s, 3), vec![3, 7, 11]);
        assert_eq!(rebin_sum(&s, 2), vec![6, 15]);
        assert_eq!(rebin_sum(&s, 6), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn rebin_ragged_preserves_total() {
        let s: Vec<u64> = (0..1440).map(|i| i % 17).collect();
        let total: u64 = s.iter().sum();
        for groups in [7, 11, 100, 120, 1440] {
            let r = rebin_sum(&s, groups);
            assert_eq!(r.len(), groups);
            assert_eq!(r.iter().sum::<u64>(), total, "groups={groups}");
        }
    }

    #[test]
    fn rebin_1440_to_120_paper_case() {
        // 2-hour experiment: 1440 minutes → 120 groups of 12 (paper §3.2.1.2).
        let s = vec![1u64; 1440];
        let r = rebin_sum(&s, 120);
        assert!(r.iter().all(|&v| v == 12));
    }

    #[test]
    fn normalize_peak_basics() {
        assert_eq!(normalize_peak(&[2, 4, 1]), vec![0.5, 1.0, 0.25]);
        assert_eq!(normalize_peak(&[0, 0]), vec![0.0, 0.0]);
    }

    #[test]
    fn apportion_exact_total() {
        let out = apportion_largest_remainder(&[1, 1, 1], 10);
        assert_eq!(out.iter().sum::<u64>(), 10);
        // 10/3: quotas 3.33 → two get 3, one (lowest index tie-break) gets 4.
        assert_eq!(out, vec![4, 3, 3]);
    }

    #[test]
    fn apportion_zero_target() {
        assert_eq!(apportion_largest_remainder(&[5, 5], 0), vec![0, 0]);
    }

    #[test]
    fn apportion_preserves_zeros() {
        let out = apportion_largest_remainder(&[0, 10, 0, 10], 6);
        assert_eq!(out[0], 0);
        assert_eq!(out[2], 0);
        assert_eq!(out.iter().sum::<u64>(), 6);
        assert_eq!(out[1], 3);
        assert_eq!(out[3], 3);
    }

    #[test]
    fn apportion_upscale() {
        // Scaling *up* works too.
        let out = apportion_largest_remainder(&[1, 2, 3], 60);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    #[should_panic]
    fn apportion_all_zero_panics() {
        apportion_largest_remainder(&[0, 0], 5);
    }

    #[test]
    fn moving_average_constant() {
        let s = vec![3.0; 10];
        assert!(moving_average(&s, 5).iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn fano_poisson_like() {
        use crate::sampler::Poisson;
        use crate::seeded_rng;
        let d = Poisson::new(50.0);
        let mut rng = seeded_rng(21);
        let s: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let f = fano_factor(&s);
        assert!((f - 1.0).abs() < 0.1, "fano = {f}");
    }

    #[test]
    fn fano_bursty_exceeds_one() {
        // on/off bursts: long zero stretches then spikes
        let mut s = vec![0u64; 100];
        for i in (0..100).step_by(10) {
            s[i] = 100;
        }
        assert!(fano_factor(&s) > 10.0);
    }

    #[test]
    fn peak_first_occurrence() {
        assert_eq!(peak(&[1, 5, 3, 5]), Some((1, 5)));
        assert_eq!(peak(&[]), None);
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let s: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        assert!((autocorrelation(&s, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_periodic_signal() {
        let period = 24usize;
        let s: Vec<f64> =
            (0..480).map(|i| (i as f64 / period as f64 * std::f64::consts::TAU).sin()).collect();
        assert!(autocorrelation(&s, period) > 0.9);
        assert!(autocorrelation(&s, period / 2) < -0.9);
    }

    #[test]
    fn apportion_weights_basic() {
        let out = apportion_weights(&[0.1, 0.2, 0.7], 10);
        assert_eq!(out, vec![1, 2, 7]);
        assert_eq!(apportion_weights(&[1.0, 1.0], 0), vec![0, 0]);
    }

    #[test]
    fn apportion_weights_tiny_weights_sum_exact() {
        let w = [1e-12, 2e-12, 3e-12];
        let out = apportion_weights(&w, 1_000_000);
        assert_eq!(out.iter().sum::<u64>(), 1_000_000);
    }

    proptest! {
        #[test]
        fn apportion_weights_sum_exact_prop(
            ws in proptest::collection::vec(0f64..1e6, 1..200),
            target in 1u64..1_000_000,
        ) {
            prop_assume!(ws.iter().any(|&w| w > 0.0));
            let out = apportion_weights(&ws, target);
            prop_assert_eq!(out.iter().sum::<u64>(), target);
        }
    }

    proptest! {
        #[test]
        fn rebin_total_invariant(s in proptest::collection::vec(0u64..1000, 1..500), g in 1usize..50) {
            prop_assume!(g <= s.len());
            let r = rebin_sum(&s, g);
            prop_assert_eq!(r.iter().sum::<u64>(), s.iter().sum::<u64>());
            prop_assert_eq!(r.len(), g);
        }

        #[test]
        fn apportion_sum_and_quota_error(
            counts in proptest::collection::vec(0u64..10_000, 1..200),
            target in 1u64..1_000_000,
        ) {
            prop_assume!(counts.iter().any(|&c| c > 0));
            let out = apportion_largest_remainder(&counts, target);
            prop_assert_eq!(out.iter().sum::<u64>(), target);
            let total: f64 = counts.iter().map(|&c| c as f64).sum();
            for (i, (&c, &o)) in counts.iter().zip(&out).enumerate() {
                let quota = c as f64 * target as f64 / total;
                prop_assert!(
                    (o as f64 - quota).abs() < 1.0 + 1e-9,
                    "element {i}: out={o} quota={quota}"
                );
            }
        }

        #[test]
        fn apportion_monotone_in_counts(
            counts in proptest::collection::vec(1u64..10_000, 2..100),
            target in 1u64..100_000,
        ) {
            // A strictly larger count never receives 2+ fewer requests than a
            // smaller one (largest-remainder can invert by at most 1).
            let out = apportion_largest_remainder(&counts, target);
            for i in 0..counts.len() {
                for j in 0..counts.len() {
                    if counts[i] > counts[j] {
                        prop_assert!(out[i] + 1 >= out[j]);
                    }
                }
            }
        }

        #[test]
        fn normalize_peak_in_unit_range(s in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let n = normalize_peak(&s);
            prop_assert!(n.iter().all(|&v| (0.0..=1.0).contains(&v)));
            if s.iter().any(|&v| v > 0) {
                prop_assert!(n.contains(&1.0));
            }
        }
    }
}

//! Special mathematical functions needed by the samplers.
//!
//! Implemented in-repo (no external math crates): `ln_gamma` via the Lanczos
//! approximation, `erf`/`erfc`, and the standard normal CDF and its inverse
//! (Acklam's rational approximation). Accuracy is more than sufficient for
//! load generation: `ln_gamma` is good to ~1e-13 relative error and the
//! normal inverse CDF to ~1.15e-9 absolute error.

/// Lanczos coefficients for g = 7, n = 9 (Numerical Recipes / Boost flavour).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Error function, via the Abramowitz & Stegun 7.1.26 rational approximation
/// refined with one Newton step against `erfc` asymptotics; absolute error
/// below 1.5e-7, which is ample for distribution shaping.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// CDF of the standard normal distribution.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// Peter Acklam's rational approximation; max absolute error ~1.15e-9.
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn normal_inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_inv_cdf requires 0 < p < 1, got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_gamma_integers_match_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            let lg = ln_gamma(n as f64);
            assert!((lg - fact.ln()).abs() < 1e-10, "ln_gamma({n}) = {lg}, expected {}", fact.ln());
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-10);
    }

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 rational approximation has ~1e-9 residual at 0.
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_26).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7);
        }
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
    }

    #[test]
    fn normal_inv_cdf_known_values() {
        assert!(normal_inv_cdf(0.5).abs() < 1e-9);
        assert!((normal_inv_cdf(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_inv_cdf(0.025) + 1.959_963_985).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn inv_cdf_roundtrip(p in 1e-6f64..=0.999_999) {
            let x = normal_inv_cdf(p);
            let p2 = normal_cdf(x);
            // erf approximation limits the roundtrip accuracy
            prop_assert!((p - p2).abs() < 5e-7, "p={p} roundtrips to {p2}");
        }

        #[test]
        fn inv_cdf_monotone(p1 in 1e-6f64..=0.999_999, p2 in 1e-6f64..=0.999_999) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(normal_inv_cdf(lo) <= normal_inv_cdf(hi) + 1e-12);
        }

        #[test]
        fn ln_gamma_recurrence(x in 0.1f64..50.0) {
            // Γ(x+1) = x Γ(x)  =>  lnΓ(x+1) = ln x + lnΓ(x)
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
        }
    }
}

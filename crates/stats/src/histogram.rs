//! Linear and logarithmic fixed-bucket histograms.
//!
//! [`LogHistogram`] doubles as the load generator's latency recorder: FaaS
//! latencies span microseconds to minutes, so log-spaced buckets give a
//! bounded-memory recorder with bounded relative quantile error, in the
//! spirit of HdrHistogram.

use serde::{Deserialize, Serialize};

/// Histogram with equally wide buckets over `[lo, hi)` plus under/overflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl LinearHistogram {
    /// Create a histogram over `[lo, hi)` with `buckets` equal-width buckets.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "LinearHistogram requires lo < hi");
        assert!(buckets > 0, "LinearHistogram requires at least one bucket");
        LinearHistogram { lo, hi, counts: vec![0; buckets], underflow: 0, overflow: 0, total: 0 }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Total recorded observations (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bucket counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Midpoint of bucket `i`.
    pub fn bucket_mid(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

/// Histogram with logarithmically spaced buckets over `[lo, hi)`.
///
/// Bucket boundaries are `lo * growth^i`; quantile estimates carry a bounded
/// *relative* error of at most `growth - 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    log_lo: f64,
    log_growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
    /// Exact running min/max for tail reporting. `None` until the first
    /// observation — JSON has no ±infinity, so sentinel non-finite floats
    /// would serialize as `null` and fail to round-trip.
    min_seen: Option<f64>,
    max_seen: Option<f64>,
}

impl LogHistogram {
    /// Histogram over `[lo, hi)` with buckets growing by `growth` (> 1).
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi` and `growth > 1`.
    pub fn new(lo: f64, hi: f64, growth: f64) -> Self {
        assert!(lo > 0.0 && lo < hi, "LogHistogram requires 0 < lo < hi");
        assert!(growth > 1.0, "LogHistogram requires growth > 1");
        let n = ((hi / lo).ln() / growth.ln()).ceil() as usize;
        LogHistogram {
            lo,
            log_lo: lo.ln(),
            log_growth: growth.ln(),
            counts: vec![0; n.max(1)],
            underflow: 0,
            overflow: 0,
            total: 0,
            min_seen: None,
            max_seen: None,
        }
    }

    /// A latency recorder: 1 µs to 10 min (in seconds), 5% resolution.
    pub fn latency_seconds() -> Self {
        Self::new(1e-6, 600.0, 1.05)
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        self.min_seen = Some(self.min_seen.map_or(x, |m| m.min(x)));
        self.max_seen = Some(self.max_seen.map_or(x, |m| m.max(x)));
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x.ln() - self.log_lo) / self.log_growth) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact minimum observation recorded (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min_seen.unwrap_or(f64::INFINITY)
    }

    /// Exact maximum observation recorded (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max_seen.unwrap_or(f64::NEG_INFINITY)
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        (self.log_lo + i as f64 * self.log_growth).exp()
    }

    /// Geometric midpoint of bucket `i`.
    pub fn bucket_mid(&self, i: usize) -> f64 {
        (self.log_lo + (i as f64 + 0.5) * self.log_growth).exp()
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile `q` in `[0,1]` (bucket-midpoint rule; underflow
    /// maps to the exact min, overflow to the exact max).
    ///
    /// # Panics
    /// Panics when empty or `q` outside `[0,1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.total > 0, "quantile of empty histogram");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return self.min();
        }
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bucket_mid(i);
            }
        }
        self.max()
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi` (past the last bucket).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The histogram of observations recorded since `earlier` was captured,
    /// where `earlier` is a prior clone/snapshot of this histogram.
    /// Per-bucket and under/overflow counts subtract (saturating, so a
    /// mismatched pair degrades rather than panics); `min`/`max` stay the
    /// cumulative extremes, since exact windowed extremes are not
    /// recoverable from two snapshots.
    ///
    /// # Panics
    /// Panics on bucket layout mismatch.
    pub fn delta(&self, earlier: &LogHistogram) -> LogHistogram {
        assert_eq!(self.counts.len(), earlier.counts.len(), "bucket count mismatch");
        assert!(
            (self.log_lo - earlier.log_lo).abs() < 1e-12
                && (self.log_growth - earlier.log_growth).abs() < 1e-12,
            "bucket layout mismatch"
        );
        let mut out = self.clone();
        for (a, b) in out.counts.iter_mut().zip(&earlier.counts) {
            *a = a.saturating_sub(*b);
        }
        out.underflow = out.underflow.saturating_sub(earlier.underflow);
        out.overflow = out.overflow.saturating_sub(earlier.overflow);
        out.total = out.total.saturating_sub(earlier.total);
        out
    }

    /// Merge another histogram with identical bucket layout.
    ///
    /// # Panics
    /// Panics on layout mismatch.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bucket count mismatch");
        assert!(
            (self.log_lo - other.log_lo).abs() < 1e-12
                && (self.log_growth - other.log_growth).abs() < 1e-12,
            "bucket layout mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
        self.min_seen = match (self.min_seen, other.min_seen) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max_seen = match (self.max_seen, other.max_seen) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_basic_binning() {
        let mut h = LinearHistogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 1.0, 9.99, -1.0, 10.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts()[0], 2); // 0.0 and 0.5
        assert_eq!(h.counts()[1], 1); // 1.0
        assert_eq!(h.counts()[9], 1); // 9.99
    }

    #[test]
    fn linear_bucket_mid() {
        let h = LinearHistogram::new(0.0, 10.0, 10);
        assert!((h.bucket_mid(0) - 0.5).abs() < 1e-12);
        assert!((h.bucket_mid(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_quantile_relative_error() {
        let mut h = LogHistogram::new(1e-3, 1e3, 1.05);
        // Record a known distribution: values 1..=1000.
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5);
        assert!((p50 / 500.0 - 1.0).abs() < 0.06, "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((p99 / 990.0 - 1.0).abs() < 0.06, "p99 = {p99}");
    }

    #[test]
    fn log_histogram_overflow_and_min_max() {
        let mut h = LogHistogram::new(1.0, 10.0, 2.0);
        h.record(0.5);
        h.record(100.0);
        h.record(2.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.quantile(1.0), 100.0);
        // lowest observation is in the underflow zone → exact min
        assert_eq!(h.quantile(0.01), 0.5);
    }

    #[test]
    fn log_histogram_merge() {
        let mut a = LogHistogram::new(1.0, 1000.0, 1.1);
        let mut b = LogHistogram::new(1.0, 1000.0, 1.1);
        for i in 1..=50 {
            a.record(i as f64);
        }
        for i in 51..=100 {
            b.record(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.total(), 100);
        let p50 = a.quantile(0.5);
        assert!((p50 / 50.0 - 1.0).abs() < 0.12, "p50 = {p50}");
    }

    #[test]
    fn log_histogram_delta_recovers_the_window() {
        let mut h = LogHistogram::new(1.0, 1000.0, 1.1);
        for i in 1..=50 {
            h.record(i as f64);
        }
        let snap = h.clone();
        h.record(0.5); // underflow
        h.record(5000.0); // overflow
        for i in 51..=100 {
            h.record(i as f64);
        }
        let d = h.delta(&snap);
        assert_eq!(d.total(), 52);
        assert_eq!(d.underflow(), 1);
        assert_eq!(d.overflow(), 1);
        assert_eq!(d.counts().iter().sum::<u64>(), 50);
        // An empty window deltas to zero.
        let z = h.delta(&h.clone());
        assert_eq!(z.total(), 0);
        assert_eq!(z.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn latency_seconds_covers_microseconds_to_minutes() {
        let mut h = LogHistogram::latency_seconds();
        h.record(2e-6);
        h.record(1.0);
        h.record(599.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    proptest! {
        #[test]
        fn log_quantile_monotone(xs in proptest::collection::vec(1e-3f64..1e3, 1..200), q1 in 0f64..=1.0, q2 in 0f64..=1.0) {
            let mut h = LogHistogram::new(1e-4, 1e4, 1.05);
            for &x in &xs { h.record(x); }
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(h.quantile(lo) <= h.quantile(hi) + 1e-9);
        }

        #[test]
        fn counts_conserved(xs in proptest::collection::vec(-10f64..1e4, 0..200)) {
            let mut h = LogHistogram::new(1.0, 100.0, 1.5);
            for &x in &xs { h.record(x); }
            let bucketed: u64 = h.counts().iter().sum();
            prop_assert_eq!(bucketed + h.underflow + h.overflow, xs.len() as u64);
        }
    }
}

//! Property tests over the discrete-event engine: conservation laws must
//! hold for arbitrary request traces, cluster shapes, and policies, and
//! the lazy arrival stream must be indistinguishable from the trace it
//! materializes to.

use faasrail_core::{
    generate_requests, materialize, ArrivalCursor, ArrivalStream, ExperimentSpec, IatModel,
    Request, RequestTrace, ScheduleModel, ScheduleSource, SpecEntry,
};
use faasrail_faas_sim::{
    simulate, ClusterConfig, FixedTtl, GreedyDual, HybridHistogram, KeepAlivePolicy, LeastLoaded,
    LoadBalancer, LruPolicy, RoundRobin, SimOptions, WarmFirst,
};
use faasrail_workloads::{CostModel, WorkloadId, WorkloadPool};
use proptest::prelude::*;

fn vanilla() -> WorkloadPool {
    WorkloadPool::vanilla(&CostModel::default_calibration())
}

fn arb_trace() -> impl Strategy<Value = RequestTrace> {
    proptest::collection::vec((0u64..600_000, 0u32..10), 1..300).prop_map(|mut reqs| {
        reqs.sort_unstable();
        RequestTrace {
            duration_minutes: 10,
            requests: reqs
                .into_iter()
                .map(|(at_ms, w)| Request { at_ms, workload: WorkloadId(w), function_index: w })
                .collect(),
        }
    })
}

fn policy(which: u8) -> Box<dyn KeepAlivePolicy> {
    match which % 4 {
        0 => Box::new(FixedTtl::ten_minutes()),
        1 => Box::new(LruPolicy),
        2 => Box::new(GreedyDual),
        _ => Box::new(HybridHistogram::new()),
    }
}

fn balancer(which: u8) -> Box<dyn LoadBalancer> {
    match which % 4 {
        0 => Box::new(RoundRobin::default()),
        1 => Box::new(LeastLoaded),
        2 => Box::new(WarmFirst),
        _ => Box::new(faasrail_faas_sim::HashAffinity),
    }
}

fn iat(which: u8) -> IatModel {
    match which % 4 {
        0 => IatModel::Poisson,
        1 => IatModel::UniformRandom,
        2 => IatModel::Equidistant,
        _ => IatModel::Bursty { cv: 1.5 },
    }
}

fn arb_spec() -> impl Strategy<Value = (ExperimentSpec, u64)> {
    (
        proptest::collection::vec((0u32..10, proptest::collection::vec(0u64..40, 3)), 1..8),
        0u8..4,
        proptest::arbitrary::any::<u64>(),
    )
        .prop_map(|(entries, which, seed)| {
            let spec = ExperimentSpec {
                duration_minutes: 3,
                target_max_rps: 10.0,
                iat: iat(which),
                entries: entries
                    .into_iter()
                    .enumerate()
                    .map(|(i, (w, per_minute))| SpecEntry {
                        function_index: i as u32,
                        workload: WorkloadId(w),
                        alternates: vec![],
                        trace_duration_ms: 20.0,
                        per_minute,
                    })
                    .collect(),
            };
            (spec, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conservation_laws(
        trace in arb_trace(),
        nodes in 1usize..5,
        cores in 1usize..8,
        memory in 300.0f64..8_192.0,
        pol in 0u8..4,
        bal in 0u8..4,
        jitter in 0u8..2,
    ) {
        let pool = vanilla();
        let cluster = ClusterConfig {
            nodes,
            cores_per_node: cores,
            memory_mb_per_node: memory,
            ..Default::default()
        };
        let mut p = policy(pol);
        let mut b = balancer(bal);
        let opts = SimOptions {
            service_jitter_sigma: if jitter == 0 { 0.0 } else { 0.3 },
            seed: 7,
            ..Default::default()
        };
        let m = simulate(&trace, &pool, &cluster, b.as_mut(), p.as_mut(), &opts);

        // Every request arrives exactly once.
        prop_assert_eq!(m.arrivals as usize, trace.requests.len());
        // Every arrival either completes or is starved — none vanish.
        prop_assert_eq!(m.completions + m.starved, m.arrivals);
        // Every completion started exactly once, warm xor cold.
        prop_assert_eq!(m.cold_starts + m.warm_starts, m.completions);
        // Response times were recorded for every completion.
        prop_assert_eq!(m.response.total(), m.completions);
        // Derived quantities are within physical bounds.
        if m.completions > 0 {
            let u = m.utilization();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
            let cf = m.cold_start_fraction();
            prop_assert!((0.0..=1.0).contains(&cf));
        }
        prop_assert!(m.idle_mb_ms >= 0.0);
    }

    #[test]
    fn single_workload_single_node_cold_starts_bounded(
        n in 1usize..100,
        gap_ms in 1u64..120_000,
    ) {
        // One workload on one node with ample memory: at most
        // ceil over TTL-expiries + 1 cold starts; with gaps below the TTL,
        // exactly one.
        let pool = vanilla();
        let trace = RequestTrace {
            duration_minutes: ((n as u64 * gap_ms) / 60_000 + 1) as usize,
            requests: (0..n as u64)
                .map(|i| Request { at_ms: i * gap_ms, workload: WorkloadId(7), function_index: 7 })
                .collect(),
        };
        let mut p = FixedTtl::ten_minutes();
        let mut b = RoundRobin::default();
        let m = simulate(
            &trace,
            &pool,
            &ClusterConfig::single_node(4, 8_192.0),
            &mut b,
            &mut p,
            &SimOptions::default(),
        );
        prop_assert_eq!(m.completions as usize, n);
        if gap_ms < 600_000 {
            // Gaps below the keep-alive window: sandbox never expires. The
            // only extra cold starts come from burst concurrency (several
            // in flight at once), bounded by the core count.
            prop_assert!(m.cold_starts <= 4, "cold starts = {}", m.cold_starts);
        }
    }

    #[test]
    fn lazy_stream_equals_materialized_path(
        (spec, seed) in arb_spec(),
        pol in 0u8..4,
        bal in 0u8..4,
    ) {
        // The lazy ArrivalStream must yield exactly the arrival sequence
        // generate_requests materializes for the same spec and seed...
        let model = ScheduleModel::from_spec(&spec);
        let stream = ArrivalStream::new(&model, seed);
        let eager = generate_requests(&spec, seed);
        let mut cursor = stream.cursor();
        for (i, r) in eager.requests.iter().enumerate() {
            let a = cursor.next_arrival();
            prop_assert!(a.is_some(), "stream ended early at {i}");
            let a = a.unwrap();
            prop_assert_eq!(
                (a.at_ms, a.workload, a.function_index),
                (r.at_ms, r.workload, r.function_index),
                "divergence at arrival {}", i
            );
        }
        prop_assert!(cursor.next_arrival().is_none(), "stream outlives the trace");
        prop_assert_eq!(materialize(&stream), eager.clone());

        // ...and the engine must not be able to tell the two apart: same
        // metrics, bit for bit, under every policy/balancer combination.
        let pool = vanilla();
        let cluster = ClusterConfig::default();
        let run_lazy = {
            let mut p = policy(pol);
            let mut b = balancer(bal);
            simulate(&stream, &pool, &cluster, b.as_mut(), p.as_mut(), &SimOptions::default())
        };
        let run_eager = {
            let mut p = policy(pol);
            let mut b = balancer(bal);
            simulate(&eager, &pool, &cluster, b.as_mut(), p.as_mut(), &SimOptions::default())
        };
        prop_assert_eq!(run_lazy, run_eager);
    }
}

//! A FaaS cluster substrate for FaaSRail experiments.
//!
//! FaaSRail replays load "against a backend FaaS system"; this crate is that
//! backend, in two flavours:
//!
//! * [`engine::simulate`] — a deterministic discrete-event cluster simulator
//!   (nodes, cores, sandbox memory, cold starts, keep-alive policies, load
//!   balancers) measuring cold-start fractions, response times, wasted warm
//!   memory, and utilization — the metrics of the research areas the paper
//!   motivates (§2.2);
//! * [`rt_backend::WarmCacheBackend`] — a wall-clock, kernel-executing
//!   warm-cache node that plugs into `faasrail-loadgen` for end-to-end runs
//!   with real computation.

pub mod cluster;
pub mod engine;
pub mod keepalive;
pub mod metrics;
pub mod registry;
pub mod rt_backend;
pub mod scheduler;

pub use cluster::{ClusterConfig, ColdStartModel};
pub use engine::{simulate, simulate_observed, NodeFault, SimOptions};
pub use keepalive::{
    FixedTtl, GreedyDual, HybridHistogram, IdleSandbox, KeepAlivePolicy, LruPolicy,
};
pub use metrics::SimMetrics;
pub use registry::{BalancerKind, PolicyKind};
pub use rt_backend::{WarmCacheBackend, WarmCacheConfig};
pub use scheduler::{HashAffinity, LeastLoaded, LoadBalancer, NodeView, RoundRobin, WarmFirst};

//! Keep-alive (sandbox caching) policies.
//!
//! The paper motivates FaaSRail with exactly this research area: "providers
//! keep [functions] cached even when idling, effectively wasting memory",
//! and representative load is needed to evaluate caching policies fairly.
//! Three policies are provided: the industry-default fixed TTL, plain LRU
//! under memory pressure, and a greedy-dual cost/size policy in the spirit
//! of FaasCache (ASPLOS '21, cited as [34]).

use faasrail_workloads::WorkloadId;

/// An idle (warm, not executing) sandbox, as presented to a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleSandbox {
    pub workload: WorkloadId,
    pub memory_mb: f64,
    /// When the sandbox last finished an invocation, ms of virtual time.
    pub last_used_ms: u64,
    /// What it would cost to recreate it (cold-start delay), ms.
    pub init_cost_ms: f64,
    /// How many invocations this sandbox has served.
    pub uses: u64,
}

/// A sandbox keep-alive policy.
pub trait KeepAlivePolicy: Send {
    /// How long an idle sandbox of `workload` may live before expiring on
    /// its own. `None` keeps sandboxes until evicted under memory pressure.
    fn idle_ttl_ms(&self, workload: WorkloadId) -> Option<u64>;

    /// Pick the index of the sandbox to evict when memory is needed.
    /// `None` refuses to evict (the request will queue).
    fn pick_victim(&mut self, idle: &[IdleSandbox], now_ms: u64) -> Option<usize>;

    /// Observe a request arrival (adaptive policies learn inter-arrival
    /// behaviour from this). Default: ignore.
    fn on_arrival(&mut self, _workload: WorkloadId, _now_ms: u64) {}

    /// Predictive prewarming (the second half of the hybrid-histogram
    /// policy): after an idle sandbox *expires*, how long after the
    /// workload's last arrival should a fresh sandbox be pre-created so it
    /// is warm for the predicted next invocation? `None` (default)
    /// disables prewarming.
    fn prewarm_after_ms(&self, _workload: WorkloadId) -> Option<u64> {
        None
    }

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Fixed keep-alive window (the 10-minute industry default the Azure trace
/// paper describes); evicts the LRU sandbox under pressure.
#[derive(Debug, Clone, Copy)]
pub struct FixedTtl {
    pub ttl_ms: u64,
}

impl FixedTtl {
    /// The canonical 10-minute window.
    pub fn ten_minutes() -> Self {
        FixedTtl { ttl_ms: 10 * 60 * 1_000 }
    }
}

impl KeepAlivePolicy for FixedTtl {
    fn idle_ttl_ms(&self, _workload: WorkloadId) -> Option<u64> {
        Some(self.ttl_ms)
    }

    fn pick_victim(&mut self, idle: &[IdleSandbox], _now_ms: u64) -> Option<usize> {
        idle.iter().enumerate().min_by_key(|(_, s)| s.last_used_ms).map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "fixed-ttl"
    }
}

/// No TTL; pure LRU eviction under memory pressure.
#[derive(Debug, Clone, Copy, Default)]
pub struct LruPolicy;

impl KeepAlivePolicy for LruPolicy {
    fn idle_ttl_ms(&self, _workload: WorkloadId) -> Option<u64> {
        None
    }

    fn pick_victim(&mut self, idle: &[IdleSandbox], _now_ms: u64) -> Option<usize> {
        idle.iter().enumerate().min_by_key(|(_, s)| s.last_used_ms).map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// Greedy-dual keep-alive: evict the sandbox with the lowest
/// `last_used + uses × init_cost / memory` priority — cheap-to-recreate,
/// rarely-used, memory-hungry sandboxes go first (FaasCache-style).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyDual;

impl GreedyDual {
    fn priority(s: &IdleSandbox) -> f64 {
        s.last_used_ms as f64 + s.uses as f64 * s.init_cost_ms / s.memory_mb.max(1.0)
    }
}

impl KeepAlivePolicy for GreedyDual {
    fn idle_ttl_ms(&self, _workload: WorkloadId) -> Option<u64> {
        None
    }

    fn pick_victim(&mut self, idle: &[IdleSandbox], _now_ms: u64) -> Option<usize> {
        idle.iter()
            .enumerate()
            .min_by(|a, b| {
                Self::priority(a.1).partial_cmp(&Self::priority(b.1)).expect("finite priority")
            })
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "greedy-dual"
    }
}

/// Hybrid-histogram keep-alive (after "Serverless in the Wild", ATC '20 —
/// the policy the Azure trace release accompanies, simplified).
///
/// Each workload's inter-arrival times feed a log-bucketed histogram; its
/// idle TTL is the `percentile` of that histogram (clamped to
/// `[min_ttl_ms, max_ttl_ms]`). Until `warmup_arrivals` observations exist,
/// the industry-default fixed window applies. Eviction under memory
/// pressure is LRU.
pub struct HybridHistogram {
    percentile: f64,
    min_ttl_ms: u64,
    max_ttl_ms: u64,
    default_ttl_ms: u64,
    warmup_arrivals: u64,
    prewarm: bool,
    trackers: std::collections::HashMap<WorkloadId, IatTracker>,
}

struct IatTracker {
    last_arrival_ms: u64,
    arrivals: u64,
    hist: faasrail_stats::histogram::LogHistogram,
}

impl HybridHistogram {
    /// The canonical configuration: 99th percentile, 1 s – 2 h clamp,
    /// 10-minute default window.
    pub fn new() -> Self {
        HybridHistogram {
            percentile: 0.99,
            min_ttl_ms: 1_000,
            max_ttl_ms: 2 * 60 * 60 * 1_000,
            default_ttl_ms: 10 * 60 * 1_000,
            warmup_arrivals: 5,
            prewarm: false,
            trackers: std::collections::HashMap::new(),
        }
    }

    /// Enable predictive prewarming: after a sandbox expires, a fresh one is
    /// created shortly before the *10th-percentile* next inter-arrival, so
    /// periodic workloads find it warm (the ATC '20 policy's prewarm half).
    pub fn with_prewarming(mut self) -> Self {
        self.prewarm = true;
        self
    }

    /// Override the percentile (e.g. 0.95 for a more aggressive policy).
    pub fn with_percentile(mut self, percentile: f64) -> Self {
        assert!((0.0..=1.0).contains(&percentile));
        self.percentile = percentile;
        self
    }

    /// Observed arrivals for a workload (for tests/inspection).
    pub fn observed(&self, workload: WorkloadId) -> u64 {
        self.trackers.get(&workload).map_or(0, |t| t.arrivals)
    }
}

impl Default for HybridHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl KeepAlivePolicy for HybridHistogram {
    fn idle_ttl_ms(&self, workload: WorkloadId) -> Option<u64> {
        let learned = self
            .trackers
            .get(&workload)
            .filter(|t| t.arrivals >= self.warmup_arrivals && t.hist.total() > 0);
        let ttl = match learned {
            Some(t) if self.prewarm => {
                // With prewarming, the sandbox need not bridge the whole
                // gap: expire early and re-create just before the predicted
                // next arrival (saving idle memory in between).
                (t.hist.quantile(0.10) * 0.5) as u64
            }
            // Keep alive just past the typical inter-arrival gap.
            Some(t) => (t.hist.quantile(self.percentile) * 1.1) as u64,
            None => self.default_ttl_ms,
        };
        Some(ttl.clamp(self.min_ttl_ms, self.max_ttl_ms))
    }

    fn pick_victim(&mut self, idle: &[IdleSandbox], _now_ms: u64) -> Option<usize> {
        idle.iter().enumerate().min_by_key(|(_, s)| s.last_used_ms).map(|(i, _)| i)
    }

    fn prewarm_after_ms(&self, workload: WorkloadId) -> Option<u64> {
        if !self.prewarm {
            return None;
        }
        match self.trackers.get(&workload) {
            Some(t) if t.arrivals >= self.warmup_arrivals && t.hist.total() > 0 => {
                // Aim just below the typical gap: warm when the next arrival
                // becomes plausible.
                Some(((t.hist.quantile(0.10) * 0.9) as u64).max(self.min_ttl_ms))
            }
            _ => None,
        }
    }

    fn on_arrival(&mut self, workload: WorkloadId, now_ms: u64) {
        let t = self.trackers.entry(workload).or_insert_with(|| IatTracker {
            last_arrival_ms: now_ms,
            arrivals: 0,
            // 100 ms .. 4 h inter-arrival range at ~10% resolution.
            hist: faasrail_stats::histogram::LogHistogram::new(100.0, 14_400_000.0, 1.1),
        });
        if t.arrivals > 0 {
            let iat = (now_ms - t.last_arrival_ms) as f64;
            t.hist.record(iat.max(1.0));
        }
        t.arrivals += 1;
        t.last_arrival_ms = now_ms;
    }

    fn name(&self) -> &'static str {
        "hybrid-histogram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(w: u32, mem: f64, last: u64, cost: f64, uses: u64) -> IdleSandbox {
        IdleSandbox {
            workload: WorkloadId(w),
            memory_mb: mem,
            last_used_ms: last,
            init_cost_ms: cost,
            uses,
        }
    }

    #[test]
    fn fixed_ttl_evicts_lru() {
        let mut p = FixedTtl::ten_minutes();
        assert_eq!(p.idle_ttl_ms(WorkloadId(0)), Some(600_000));
        let idle = [sb(0, 100.0, 50, 300.0, 1), sb(1, 100.0, 10, 300.0, 1)];
        assert_eq!(p.pick_victim(&idle, 100), Some(1));
    }

    #[test]
    fn lru_no_ttl() {
        let mut p = LruPolicy;
        assert_eq!(p.idle_ttl_ms(WorkloadId(0)), None);
        assert_eq!(p.pick_victim(&[], 0), None);
    }

    #[test]
    fn greedy_dual_prefers_cheap_large_idle() {
        let mut p = GreedyDual;
        // Same recency: the big, cheap-to-recreate, rarely used sandbox
        // should be evicted before the small, expensive, popular one.
        let idle = [
            sb(0, 1_000.0, 100, 100.0, 1), // big, cheap, cold: low priority
            sb(1, 64.0, 100, 2_000.0, 50), // small, expensive, hot
        ];
        assert_eq!(p.pick_victim(&idle, 200), Some(0));
    }

    #[test]
    fn greedy_dual_respects_recency() {
        let mut p = GreedyDual;
        let idle = [sb(0, 100.0, 500_000, 300.0, 1), sb(1, 100.0, 10, 300.0, 1)];
        assert_eq!(p.pick_victim(&idle, 600_000), Some(1));
    }
}

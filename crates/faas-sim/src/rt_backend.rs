//! Real-time backend: a warm-cache FaaS node serving the load generator.
//!
//! Where [`crate::engine`] simulates a cluster in virtual time, this backend
//! plugs into `faasrail-loadgen` and serves requests on the *wall clock*:
//! it keeps a memory-bounded warm-sandbox cache with TTL expiry, charges a
//! (scaled) cold-start delay on misses, and then actually executes the
//! workload kernel — real FaaS behaviour under real generated load.

use crate::cluster::ColdStartModel;
use faasrail_loadgen::{Backend, InvocationRequest, InvocationResult};
use faasrail_workloads::{WorkloadId, WorkloadPool};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

struct WarmEntry {
    memory_mb: f64,
    last_used: Instant,
}

struct CacheState {
    entries: HashMap<WorkloadId, WarmEntry>,
    used_mb: f64,
}

/// Configuration for the warm-cache backend.
#[derive(Debug, Clone, Copy)]
pub struct WarmCacheConfig {
    /// Total sandbox memory, MiB.
    pub capacity_mb: f64,
    /// Idle TTL before a warm sandbox expires.
    pub ttl: Duration,
    /// Cold-start model (delays are slept, scaled by `cold_scale`).
    pub cold_start: ColdStartModel,
    /// Multiplier on slept cold-start delays (0 disables sleeping, keeping
    /// tests fast while still *counting* cold starts).
    pub cold_scale: f64,
    /// Execute the real kernel (`true`) or just account for it (`false`).
    pub execute_kernels: bool,
}

impl Default for WarmCacheConfig {
    fn default() -> Self {
        WarmCacheConfig {
            capacity_mb: 8_192.0,
            ttl: Duration::from_secs(600),
            cold_start: ColdStartModel::default(),
            cold_scale: 1.0,
            execute_kernels: true,
        }
    }
}

/// A single-node warm-cache FaaS backend.
pub struct WarmCacheBackend {
    pool: WorkloadPool,
    cfg: WarmCacheConfig,
    state: Mutex<CacheState>,
}

impl WarmCacheBackend {
    /// Create a backend serving workloads from `pool`.
    pub fn new(pool: WorkloadPool, cfg: WarmCacheConfig) -> Self {
        assert!(cfg.capacity_mb > 0.0, "capacity must be positive");
        WarmCacheBackend {
            pool,
            cfg,
            state: Mutex::new(CacheState { entries: HashMap::new(), used_mb: 0.0 }),
        }
    }

    /// Number of currently warm sandboxes (for tests/inspection).
    pub fn warm_count(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Decide warm/cold and update the cache; returns `(cold, delay_ms)`.
    fn admit(&self, workload: WorkloadId, memory_mb: f64) -> (bool, f64) {
        let now = Instant::now();
        let mut st = self.state.lock();

        // Expire idle entries past their TTL.
        let ttl = self.cfg.ttl;
        let expired: Vec<WorkloadId> = st
            .entries
            .iter()
            .filter(|(_, e)| now.duration_since(e.last_used) > ttl)
            .map(|(&k, _)| k)
            .collect();
        for k in expired {
            if let Some(e) = st.entries.remove(&k) {
                st.used_mb -= e.memory_mb;
            }
        }

        if let Some(e) = st.entries.get_mut(&workload) {
            e.last_used = now;
            return (false, 0.0);
        }

        // Cold: make room (LRU) and install.
        while st.used_mb + memory_mb > self.cfg.capacity_mb && !st.entries.is_empty() {
            let victim = *st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
                .expect("non-empty");
            if let Some(e) = st.entries.remove(&victim) {
                st.used_mb -= e.memory_mb;
            }
        }
        st.used_mb += memory_mb;
        st.entries.insert(workload, WarmEntry { memory_mb, last_used: now });
        (true, self.cfg.cold_start.delay_ms(memory_mb))
    }
}

impl Backend for WarmCacheBackend {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        let Some(w) = self.pool.get(req.workload) else {
            return InvocationResult::app_error(
                0.0,
                format!("workload {:?} not in pool", req.workload),
            );
        };
        let (cold, delay_ms) = self.admit(req.workload, w.memory_mb);
        let start = Instant::now();
        if cold && self.cfg.cold_scale > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(delay_ms * self.cfg.cold_scale / 1_000.0));
        }
        if self.cfg.execute_kernels {
            std::hint::black_box(faasrail_workloads::kernels::execute(&req.input));
        }
        InvocationResult::success(start.elapsed().as_secs_f64() * 1_000.0, cold)
    }

    fn name(&self) -> &str {
        "warm-cache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_workloads::{CostModel, WorkloadInput};

    fn backend(capacity_mb: f64) -> WarmCacheBackend {
        WarmCacheBackend::new(
            WorkloadPool::vanilla(&CostModel::default_calibration()),
            WarmCacheConfig {
                capacity_mb,
                cold_scale: 0.0,
                execute_kernels: false,
                ..Default::default()
            },
        )
    }

    fn req(id: u32) -> InvocationRequest {
        InvocationRequest {
            workload: WorkloadId(id),
            input: WorkloadInput::Pyaes { bytes: 16 },
            function_index: id,
            scheduled_at_ms: 0,
            trace_id: 0,
        }
    }

    #[test]
    fn cold_then_warm() {
        let b = backend(8_192.0);
        assert!(b.invoke(&req(7)).cold_start);
        assert!(!b.invoke(&req(7)).cold_start);
        assert_eq!(b.warm_count(), 1);
    }

    #[test]
    fn capacity_evicts_lru() {
        // Tiny cache: each admission evicts the previous workload.
        let b = backend(64.0);
        assert!(b.invoke(&req(7)).cold_start); // pyaes ~33 MiB
        assert!(b.invoke(&req(3)).cold_start); // json ~66 MiB → evicts pyaes
        assert!(b.invoke(&req(7)).cold_start, "pyaes was evicted");
    }

    #[test]
    fn unknown_workload_fails() {
        let b = backend(1_024.0);
        let r = b.invoke(&InvocationRequest {
            workload: WorkloadId(9_999),
            input: WorkloadInput::Pyaes { bytes: 16 },
            function_index: 0,
            scheduled_at_ms: 0,
            trace_id: 0,
        });
        assert!(!r.ok);
    }

    #[test]
    fn ttl_expires_entries() {
        let pool = WorkloadPool::vanilla(&CostModel::default_calibration());
        let b = WarmCacheBackend::new(
            pool,
            WarmCacheConfig {
                ttl: Duration::from_millis(20),
                cold_scale: 0.0,
                execute_kernels: false,
                ..Default::default()
            },
        );
        assert!(b.invoke(&req(7)).cold_start);
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.invoke(&req(7)).cold_start, "entry should have expired");
    }

    #[test]
    fn kernel_execution_takes_time() {
        let pool = WorkloadPool::vanilla(&CostModel::default_calibration());
        let b = WarmCacheBackend::new(
            pool,
            WarmCacheConfig { cold_scale: 0.0, execute_kernels: true, ..Default::default() },
        );
        let r = b.invoke(&InvocationRequest {
            workload: WorkloadId(7),
            input: WorkloadInput::Pyaes { bytes: 256 * 1024 },
            function_index: 0,
            scheduled_at_ms: 0,
            trace_id: 0,
        });
        assert!(r.ok);
        assert!(r.service_ms > 0.1, "256 KiB of software AES takes real time");
    }
}

//! Cluster and cold-start models.

use serde::{Deserialize, Serialize};

/// Cold-start cost model: sandbox creation time as a function of the
/// workload's memory footprint (bigger runtimes take longer to initialize,
/// as reported across the snapshotting literature the paper cites).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColdStartModel {
    /// Fixed sandbox creation cost, ms.
    pub base_ms: f64,
    /// Additional cost per 100 MiB of workload memory, ms.
    pub per_100mb_ms: f64,
}

impl Default for ColdStartModel {
    fn default() -> Self {
        // Container-class cold starts: ~250 ms base + memory loading.
        ColdStartModel { base_ms: 250.0, per_100mb_ms: 50.0 }
    }
}

impl ColdStartModel {
    /// Cold-start delay for a workload of `memory_mb`.
    pub fn delay_ms(&self, memory_mb: f64) -> f64 {
        self.base_ms + self.per_100mb_ms * memory_mb / 100.0
    }

    /// A microVM-snapshot-class model (the fast end of the literature).
    pub fn snapshot() -> Self {
        ColdStartModel { base_ms: 10.0, per_100mb_ms: 5.0 }
    }
}

/// Static description of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    pub nodes: usize,
    /// Concurrent invocations a node can run (one per core).
    pub cores_per_node: usize,
    /// Memory available for sandboxes per node, MiB.
    pub memory_mb_per_node: f64,
    pub cold_start: ColdStartModel,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        // A small research cluster: 4 nodes × 16 cores × 32 GiB.
        ClusterConfig {
            nodes: 4,
            cores_per_node: 16,
            memory_mb_per_node: 32_768.0,
            cold_start: ColdStartModel::default(),
        }
    }
}

impl ClusterConfig {
    /// Single-node configuration.
    pub fn single_node(cores: usize, memory_mb: f64) -> Self {
        ClusterConfig {
            nodes: 1,
            cores_per_node: cores,
            memory_mb_per_node: memory_mb,
            cold_start: ColdStartModel::default(),
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster needs at least one node".into());
        }
        if self.cores_per_node == 0 {
            return Err("nodes need at least one core".into());
        }
        if self.memory_mb_per_node <= 0.0 {
            return Err("nodes need positive memory".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_scales_with_memory() {
        let m = ColdStartModel::default();
        assert!((m.delay_ms(100.0) - 300.0).abs() < 1e-9);
        assert!(m.delay_ms(1_000.0) > m.delay_ms(100.0));
        assert!(ColdStartModel::snapshot().delay_ms(100.0) < m.delay_ms(100.0));
    }

    #[test]
    fn validation() {
        assert!(ClusterConfig::default().validate().is_ok());
        assert!(ClusterConfig { nodes: 0, ..Default::default() }.validate().is_err());
        assert!(ClusterConfig { cores_per_node: 0, ..Default::default() }.validate().is_err());
        assert!(ClusterConfig { memory_mb_per_node: 0.0, ..Default::default() }
            .validate()
            .is_err());
    }
}

//! Named constructors for keep-alive policies and load balancers.
//!
//! The CLI and the lab runner both need to turn strings like
//! `"hybrid-histogram"` into fresh policy/balancer instances — and the lab
//! runner needs to do it once *per grid cell*, because policies are
//! stateful. Centralising the name ↔ constructor mapping here keeps the
//! two front ends in lockstep: a policy added to the simulator becomes
//! addressable everywhere by adding one enum variant.

use crate::keepalive::{FixedTtl, GreedyDual, HybridHistogram, KeepAlivePolicy, LruPolicy};
use crate::scheduler::{HashAffinity, LeastLoaded, LoadBalancer, RoundRobin, WarmFirst};

/// Every keep-alive policy the simulator ships, by stable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    FixedTtl,
    Lru,
    GreedyDual,
    HybridHistogram,
}

impl PolicyKind {
    /// All known policies, in canonical (report) order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::FixedTtl,
        PolicyKind::Lru,
        PolicyKind::GreedyDual,
        PolicyKind::HybridHistogram,
    ];

    /// The stable CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::FixedTtl => "fixed-ttl",
            PolicyKind::Lru => "lru",
            PolicyKind::GreedyDual => "greedy-dual",
            PolicyKind::HybridHistogram => "hybrid-histogram",
        }
    }

    /// Parse a CLI name. The error lists the valid names.
    pub fn parse(s: &str) -> Result<PolicyKind, String> {
        PolicyKind::ALL.into_iter().find(|k| k.name() == s).ok_or_else(|| {
            let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown keep-alive policy {s:?} (expected one of {})", names.join(", "))
        })
    }

    /// A fresh, stateless-to-date instance of the policy.
    pub fn build(self) -> Box<dyn KeepAlivePolicy> {
        match self {
            PolicyKind::FixedTtl => Box::new(FixedTtl::ten_minutes()),
            PolicyKind::Lru => Box::new(LruPolicy),
            PolicyKind::GreedyDual => Box::new(GreedyDual),
            PolicyKind::HybridHistogram => Box::new(HybridHistogram::new()),
        }
    }
}

/// Every load balancer the simulator ships, by stable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BalancerKind {
    RoundRobin,
    LeastLoaded,
    WarmFirst,
    Hash,
}

impl BalancerKind {
    /// All known balancers, in canonical (report) order.
    pub const ALL: [BalancerKind; 4] = [
        BalancerKind::RoundRobin,
        BalancerKind::LeastLoaded,
        BalancerKind::WarmFirst,
        BalancerKind::Hash,
    ];

    /// The stable CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            BalancerKind::RoundRobin => "round-robin",
            BalancerKind::LeastLoaded => "least-loaded",
            BalancerKind::WarmFirst => "warm-first",
            BalancerKind::Hash => "hash",
        }
    }

    /// Parse a CLI name. Accepts `"hash-affinity"` (the balancer's report
    /// name) as an alias for `"hash"`. The error lists the valid names.
    pub fn parse(s: &str) -> Result<BalancerKind, String> {
        if s == "hash-affinity" {
            return Ok(BalancerKind::Hash);
        }
        BalancerKind::ALL.into_iter().find(|k| k.name() == s).ok_or_else(|| {
            let names: Vec<&str> = BalancerKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown balancer {s:?} (expected one of {})", names.join(", "))
        })
    }

    /// A fresh instance of the balancer.
    pub fn build(self) -> Box<dyn LoadBalancer> {
        match self {
            BalancerKind::RoundRobin => Box::new(RoundRobin::default()),
            BalancerKind::LeastLoaded => Box::new(LeastLoaded),
            BalancerKind::WarmFirst => Box::new(WarmFirst),
            BalancerKind::Hash => Box::new(HashAffinity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips_through_its_name() {
        for k in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(k.name()).unwrap(), k);
            assert_eq!(k.build().name(), k.name());
        }
        for k in BalancerKind::ALL {
            assert_eq!(BalancerKind::parse(k.name()).unwrap(), k);
        }
        // `hash` is the CLI name; the balancer reports itself as
        // `hash-affinity`, and parse accepts both.
        assert_eq!(BalancerKind::parse("hash-affinity").unwrap(), BalancerKind::Hash);
    }

    #[test]
    fn unknown_names_error_and_list_alternatives() {
        let e = PolicyKind::parse("nope").unwrap_err();
        assert!(e.contains("fixed-ttl") && e.contains("hybrid-histogram"), "{e}");
        let e = BalancerKind::parse("nope").unwrap_err();
        assert!(e.contains("round-robin") && e.contains("hash"), "{e}");
    }
}

//! The discrete-event cluster simulation engine.
//!
//! Replays a [`RequestTrace`] against a virtual cluster in virtual time:
//! arrivals are load-balanced to nodes, served warm when an idle sandbox
//! exists, cold-started when memory allows (evicting per the keep-alive
//! policy), and queued FIFO otherwise. The engine measures exactly the
//! quantities the paper's motivating research areas care about: cold-start
//! counts, response times, memory wasted by idle sandboxes, and per-node
//! utilization.

use crate::cluster::ClusterConfig;
use crate::keepalive::{IdleSandbox, KeepAlivePolicy};
use crate::metrics::SimMetrics;
use crate::scheduler::{LoadBalancer, NodeView};
use faasrail_core::RequestTrace;
use faasrail_stats::sampler::{LogNormal, Sampler};
use faasrail_stats::seeded_rng;
use faasrail_telemetry::{
    EventSink, InvocationSpan, NullSink, OutcomeClass, RunInfo, RunSummary, TelemetryEvent,
};
use faasrail_workloads::{WorkloadId, WorkloadPool};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A node-level fault injected into the virtual cluster — the simulator's
/// counterpart of the gateway's seeded connection faults. Crashes model a
/// worker machine dying mid-experiment (everything in flight lost, the
/// warm-sandbox cache gone); slow factors model persistent stragglers
/// (thermal throttling, noisy neighbours) that degrade service without
/// failing outright.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFault {
    /// Which node (index into the cluster).
    pub node: u32,
    /// Crash the node at this virtual instant (ms from experiment start):
    /// running invocations are killed, queued requests are lost, and all
    /// idle sandboxes vanish. The node restarts immediately with cold
    /// memory and keeps serving later arrivals.
    pub crash_at_ms: Option<u64>,
    /// Persistent service-time multiplier for this node (`1.0` = healthy,
    /// `3.0` = three times slower). Applies to service time only — cold
    /// start initialization is memory-bound, not core-bound, in this model.
    pub slow_factor: f64,
}

impl Default for NodeFault {
    fn default() -> Self {
        NodeFault { node: 0, crash_at_ms: None, slow_factor: 1.0 }
    }
}

/// Engine options.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Log-normal sigma for per-invocation service-time jitter around the
    /// workload's mean (0 = deterministic service times).
    pub service_jitter_sigma: f64,
    /// RNG seed for the jitter.
    pub seed: u64,
    /// Node-level faults (crashes, slow nodes); empty = healthy cluster.
    pub node_faults: Vec<NodeFault>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { service_jitter_sigma: 0.0, seed: 0, node_faults: Vec::new() }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Index into the trace's request vector.
    Arrival(u32),
    /// An invocation finished on `node`; `key` identifies the Running entry.
    Finish { node: u32, key: u64 },
    /// TTL check for the idle sandbox carrying `stamp` on `node`.
    Expire { node: u32, stamp: u64 },
    /// Predictively re-create a warm sandbox for `workload` on `node`.
    Prewarm { node: u32, workload: WorkloadId },
    /// `node` crashes: in-flight and queued work is lost, warm state gone.
    Crash { node: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at_us: u64,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy)]
struct Sandbox {
    workload: WorkloadId,
    memory_mb: f64,
    last_used_us: u64,
    init_cost_ms: f64,
    uses: u64,
    stamp: u64,
}

#[derive(Debug, Clone, Copy)]
struct QueuedReq {
    /// Index into the trace's request vector (span sequence number).
    index: u32,
    arrived_us: u64,
    workload: WorkloadId,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    node: u32,
    sandbox: Sandbox,
    index: u32,
    arrived_us: u64,
    /// Virtual instant the invocation left the queue and began executing.
    started_us: u64,
    /// Jitter/slowdown-adjusted service time (excludes cold-start init).
    service_ms: f64,
    started_cold: bool,
}

struct Node {
    free_memory_mb: f64,
    busy_cores: usize,
    idle: Vec<Sandbox>,
    queue: VecDeque<QueuedReq>,
}

/// Run the simulation.
pub fn simulate(
    trace: &RequestTrace,
    pool: &WorkloadPool,
    cluster: &ClusterConfig,
    balancer: &mut dyn LoadBalancer,
    policy: &mut dyn KeepAlivePolicy,
    opts: &SimOptions,
) -> SimMetrics {
    simulate_observed(trace, pool, cluster, balancer, policy, opts, &NullSink)
}

/// Run the simulation, emitting a telemetry event stream as it goes.
///
/// The emitted spans carry *virtual* timestamps (microseconds of simulated
/// time since experiment start), so the same `faasrail report` pipeline
/// that digests a wall-clock replay log works on simulator output:
/// `dispatched_us` is the arrival instant (the simulator's open-loop
/// schedule never lags), `picked_up_us` is when a core started executing
/// the invocation (queue wait in between), and cold-start initialization
/// shows up as overhead between pickup and completion beyond `service_ms`.
/// Invocations killed by a node crash become [`OutcomeClass::Transport`]
/// spans; requests still queued when a node dies (or starved at the end of
/// the run) never started and get no span.
#[allow(clippy::too_many_arguments)]
pub fn simulate_observed(
    trace: &RequestTrace,
    pool: &WorkloadPool,
    cluster: &ClusterConfig,
    balancer: &mut dyn LoadBalancer,
    policy: &mut dyn KeepAlivePolicy,
    opts: &SimOptions,
    sink: &dyn EventSink,
) -> SimMetrics {
    cluster.validate().expect("invalid cluster");
    sink.emit(&TelemetryEvent::RunStart(RunInfo {
        requests: trace.len() as u64,
        duration_minutes: trace.duration_minutes as u64,
        workers: (cluster.nodes * cluster.cores_per_node) as u64,
        pacing: "simulated".to_string(),
        compression: 1.0,
    }));
    let mut rng = seeded_rng(opts.seed);
    let jitter =
        (opts.service_jitter_sigma > 0.0).then(|| LogNormal::new(0.0, opts.service_jitter_sigma));

    let mut nodes: Vec<Node> = (0..cluster.nodes)
        .map(|_| Node {
            free_memory_mb: cluster.memory_mb_per_node,
            busy_cores: 0,
            idle: Vec::new(),
            queue: VecDeque::new(),
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::with_capacity(trace.len() * 2);
    let mut seq = 0u64;
    for (i, r) in trace.requests.iter().enumerate() {
        seq += 1;
        heap.push(Reverse(Event {
            at_us: r.at_ms * 1_000,
            seq,
            kind: EventKind::Arrival(i as u32),
        }));
    }

    // Node-fault setup: per-node service slowdown, plus scheduled crashes.
    let mut slow = vec![1.0f64; cluster.nodes];
    for f in &opts.node_faults {
        let Some(s) = slow.get_mut(f.node as usize) else { continue };
        *s *= f.slow_factor;
        if let Some(crash_ms) = f.crash_at_ms {
            seq += 1;
            heap.push(Reverse(Event {
                at_us: crash_ms * 1_000,
                seq,
                kind: EventKind::Crash { node: f.node },
            }));
        }
    }

    let mut metrics = SimMetrics::new(policy.name(), balancer.name());
    metrics.per_node_busy_ms = vec![0.0; cluster.nodes];
    let mut next_stamp = 0u64;
    // Invocations in flight, keyed by a (node, finish-time) pairing via a
    // per-node FIFO of running entries sorted by completion: we instead keep
    // a map from event seq — simpler: store running entries in a Vec indexed
    // by stamp.
    let mut running: std::collections::HashMap<u64, Running> = std::collections::HashMap::new();

    // Try to start `req` on `node_idx` at `now_us`. Returns false if it must
    // queue. On success, schedules the Finish event.
    #[allow(clippy::too_many_arguments)]
    fn try_start(
        nodes: &mut [Node],
        node_idx: usize,
        req: QueuedReq,
        now_us: u64,
        pool: &WorkloadPool,
        cluster: &ClusterConfig,
        policy: &mut dyn KeepAlivePolicy,
        jitter: &Option<LogNormal>,
        slow: &[f64],
        rng: &mut rand::rngs::StdRng,
        metrics: &mut SimMetrics,
        heap: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        next_stamp: &mut u64,
        running: &mut std::collections::HashMap<u64, Running>,
    ) -> bool {
        let node = &mut nodes[node_idx];
        if node.busy_cores >= cluster.cores_per_node {
            return false;
        }
        let w = pool.get(req.workload).expect("workload in pool");
        let mut service_ms = w.mean_ms * slow[node_idx];
        if let Some(j) = jitter {
            service_ms *= j.sample(rng);
        }

        let (sandbox, cold) =
            if let Some(pos) = node.idle.iter().position(|s| s.workload == req.workload) {
                let mut s = node.idle.swap_remove(pos);
                metrics.idle_mb_ms += s.memory_mb * (now_us - s.last_used_us) as f64 / 1_000.0;
                s.uses += 1;
                (s, false)
            } else {
                // Need memory for a new sandbox; evict per policy while short.
                while node.free_memory_mb < w.memory_mb {
                    let idle_view: Vec<IdleSandbox> = node
                        .idle
                        .iter()
                        .map(|s| IdleSandbox {
                            workload: s.workload,
                            memory_mb: s.memory_mb,
                            last_used_ms: s.last_used_us / 1_000,
                            init_cost_ms: s.init_cost_ms,
                            uses: s.uses,
                        })
                        .collect();
                    match policy.pick_victim(&idle_view, now_us / 1_000) {
                        Some(victim) => {
                            let s = node.idle.swap_remove(victim);
                            metrics.idle_mb_ms +=
                                s.memory_mb * (now_us - s.last_used_us) as f64 / 1_000.0;
                            node.free_memory_mb += s.memory_mb;
                            metrics.evictions += 1;
                        }
                        None => return false,
                    }
                }
                node.free_memory_mb -= w.memory_mb;
                *next_stamp += 1;
                (
                    Sandbox {
                        workload: req.workload,
                        memory_mb: w.memory_mb,
                        last_used_us: now_us,
                        init_cost_ms: cluster.cold_start.delay_ms(w.memory_mb),
                        uses: 1,
                        stamp: *next_stamp,
                    },
                    true,
                )
            };

        node.busy_cores += 1;
        let total_ms = service_ms + if cold { sandbox.init_cost_ms } else { 0.0 };
        if cold {
            metrics.cold_starts += 1;
        } else {
            metrics.warm_starts += 1;
        }
        metrics.busy_core_ms += total_ms;
        metrics.per_node_busy_ms[node_idx] += total_ms;
        let finish_us = now_us + (total_ms * 1_000.0) as u64;
        *next_stamp += 1;
        let run_key = *next_stamp;
        running.insert(
            run_key,
            Running {
                node: node_idx as u32,
                sandbox,
                index: req.index,
                arrived_us: req.arrived_us,
                started_us: now_us,
                service_ms,
                started_cold: cold,
            },
        );
        *seq += 1;
        heap.push(Reverse(Event {
            at_us: finish_us,
            seq: *seq,
            kind: EventKind::Finish { node: node_idx as u32, key: run_key },
        }));
        true
    }

    /// Start as many queued requests as now fit (FIFO head-of-line).
    #[allow(clippy::too_many_arguments)]
    fn drain_queue(
        nodes: &mut [Node],
        node_idx: usize,
        now_us: u64,
        pool: &WorkloadPool,
        cluster: &ClusterConfig,
        policy: &mut dyn KeepAlivePolicy,
        jitter: &Option<LogNormal>,
        slow: &[f64],
        rng: &mut rand::rngs::StdRng,
        metrics: &mut SimMetrics,
        heap: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        next_stamp: &mut u64,
        running: &mut std::collections::HashMap<u64, Running>,
    ) {
        while let Some(&front) = nodes[node_idx].queue.front() {
            let started = try_start(
                nodes, node_idx, front, now_us, pool, cluster, policy, jitter, slow, rng, metrics,
                heap, seq, next_stamp, running,
            );
            if started {
                let waited = (now_us - front.arrived_us) as f64 / 1e6;
                metrics.queue_wait.record(waited.max(1e-9));
                nodes[node_idx].queue.pop_front();
            } else {
                break;
            }
        }
    }

    let mut last_us = 0u64;
    while let Some(Reverse(ev)) = heap.pop() {
        let now_us = ev.at_us;
        last_us = last_us.max(now_us);
        match ev.kind {
            EventKind::Arrival(i) => {
                let r = &trace.requests[i as usize];
                metrics.arrivals += 1;
                policy.on_arrival(r.workload, now_us / 1_000);
                let views: Vec<NodeView> = nodes
                    .iter()
                    .map(|n| NodeView {
                        warm_for_workload: n
                            .idle
                            .iter()
                            .filter(|s| s.workload == r.workload)
                            .count(),
                        free_memory_mb: n.free_memory_mb,
                        running: n.busy_cores,
                        queued: n.queue.len(),
                        cores: cluster.cores_per_node,
                    })
                    .collect();
                let target = balancer.pick_node(r.workload, &views).min(nodes.len() - 1);
                let req = QueuedReq { index: i, arrived_us: now_us, workload: r.workload };
                let started = try_start(
                    &mut nodes,
                    target,
                    req,
                    now_us,
                    pool,
                    cluster,
                    policy,
                    &jitter,
                    &slow,
                    &mut rng,
                    &mut metrics,
                    &mut heap,
                    &mut seq,
                    &mut next_stamp,
                    &mut running,
                );
                if !started {
                    nodes[target].queue.push_back(req);
                    metrics.max_queue = metrics
                        .max_queue
                        .max(nodes.iter().map(|n| n.queue.len()).sum::<usize>() as u64);
                }
            }
            EventKind::Finish { node, key } => {
                // A missing entry is a tombstone: the invocation was killed
                // by a node crash before its finish event fired.
                let Some(run) = running.remove(&key) else { continue };
                debug_assert_eq!(run.node, node);
                debug_assert!(run.started_cold || run.sandbox.uses >= 1);
                let n = &mut nodes[node as usize];
                n.busy_cores -= 1;
                metrics.completions += 1;
                // Response includes queueing and (for cold starts) the
                // sandbox creation delay by construction.
                metrics.response.record(((now_us - run.arrived_us) as f64 / 1e6).max(1e-9));
                sink.emit(&TelemetryEvent::Invocation(InvocationSpan {
                    trace_id: 0, // single-tier: simulated spans have nothing to join against
                    seq: run.index as u64,
                    workload: run.sandbox.workload.0 as u64,
                    function_index: trace.requests[run.index as usize].function_index,
                    scheduled_ms: run.arrived_us / 1_000,
                    target_us: run.arrived_us,
                    dispatched_us: run.arrived_us,
                    picked_up_us: run.started_us,
                    completed_us: now_us,
                    service_ms: run.service_ms,
                    outcome: OutcomeClass::Ok,
                    cold_start: run.started_cold,
                    error: None,
                }));

                // Idle the sandbox.
                next_stamp += 1;
                let mut s = run.sandbox;
                s.last_used_us = now_us;
                s.stamp = next_stamp;
                let stamp = s.stamp;
                n.idle.push(s);
                if let Some(ttl_ms) = policy.idle_ttl_ms(run.sandbox.workload) {
                    seq += 1;
                    heap.push(Reverse(Event {
                        at_us: now_us + ttl_ms * 1_000,
                        seq,
                        kind: EventKind::Expire { node, stamp },
                    }));
                }

                // Drain the node's queue (FIFO head-of-line).
                drain_queue(
                    &mut nodes,
                    node as usize,
                    now_us,
                    pool,
                    cluster,
                    policy,
                    &jitter,
                    &slow,
                    &mut rng,
                    &mut metrics,
                    &mut heap,
                    &mut seq,
                    &mut next_stamp,
                    &mut running,
                );
            }
            EventKind::Expire { node, stamp } => {
                let n = &mut nodes[node as usize];
                if let Some(pos) = n.idle.iter().position(|s| s.stamp == stamp) {
                    let s = n.idle.swap_remove(pos);
                    metrics.idle_mb_ms += s.memory_mb * (now_us - s.last_used_us) as f64 / 1_000.0;
                    n.free_memory_mb += s.memory_mb;
                    metrics.expirations += 1;
                    // Predictive prewarming: re-create the sandbox shortly
                    // before the workload's expected next arrival. Only
                    // sandboxes that actually served invocations re-arm —
                    // a prewarmed sandbox expiring *unused* must not
                    // re-prewarm, or the cycle would self-sustain forever.
                    if s.uses > 0 {
                        if let Some(after_ms) = policy.prewarm_after_ms(s.workload) {
                            let at_us = (s.last_used_us).saturating_add(after_ms * 1_000);
                            if at_us > now_us {
                                seq += 1;
                                heap.push(Reverse(Event {
                                    at_us,
                                    seq,
                                    kind: EventKind::Prewarm { node, workload: s.workload },
                                }));
                            }
                        }
                    }
                    // Freed memory may unblock the head of the queue.
                    drain_queue(
                        &mut nodes,
                        node as usize,
                        now_us,
                        pool,
                        cluster,
                        policy,
                        &jitter,
                        &slow,
                        &mut rng,
                        &mut metrics,
                        &mut heap,
                        &mut seq,
                        &mut next_stamp,
                        &mut running,
                    );
                }
            }
            EventKind::Prewarm { node, workload } => {
                let n = &mut nodes[node as usize];
                let already_warm = n.idle.iter().any(|s| s.workload == workload);
                let w = pool.get(workload).expect("workload in pool");
                if !already_warm && n.free_memory_mb >= w.memory_mb {
                    n.free_memory_mb -= w.memory_mb;
                    next_stamp += 1;
                    let stamp = next_stamp;
                    n.idle.push(Sandbox {
                        workload,
                        memory_mb: w.memory_mb,
                        last_used_us: now_us,
                        init_cost_ms: cluster.cold_start.delay_ms(w.memory_mb),
                        uses: 0,
                        stamp,
                    });
                    metrics.prewarms += 1;
                    if let Some(ttl_ms) = policy.idle_ttl_ms(workload) {
                        seq += 1;
                        heap.push(Reverse(Event {
                            at_us: now_us + ttl_ms * 1_000,
                            seq,
                            kind: EventKind::Expire { node, stamp },
                        }));
                    }
                }
            }
            EventKind::Crash { node } => {
                let Some(n) = nodes.get_mut(node as usize) else { continue };
                // In-flight invocations die with the node; their Finish
                // events become tombstones (the Finish arm tolerates a
                // missing `running` entry).
                let doomed: Vec<u64> =
                    running.iter().filter(|(_, r)| r.node == node).map(|(&k, _)| k).collect();
                for key in doomed {
                    let Some(run) = running.remove(&key) else { continue };
                    metrics.killed += 1;
                    sink.emit(&TelemetryEvent::Invocation(InvocationSpan {
                        trace_id: 0, // single-tier: simulated spans have nothing to join against
                        seq: run.index as u64,
                        workload: run.sandbox.workload.0 as u64,
                        function_index: trace.requests[run.index as usize].function_index,
                        scheduled_ms: run.arrived_us / 1_000,
                        target_us: run.arrived_us,
                        dispatched_us: run.arrived_us,
                        picked_up_us: run.started_us,
                        completed_us: now_us,
                        service_ms: 0.0,
                        outcome: OutcomeClass::Transport,
                        cold_start: run.started_cold,
                        error: Some("node crash".to_string()),
                    }));
                }
                n.busy_cores = 0;
                // Warm state is gone: account idle time up to the crash,
                // then drop every sandbox.
                for s in n.idle.drain(..) {
                    metrics.idle_mb_ms += s.memory_mb * (now_us - s.last_used_us) as f64 / 1_000.0;
                    metrics.sandboxes_lost += 1;
                }
                n.free_memory_mb = cluster.memory_mb_per_node;
                // Queued work on the node is lost too.
                metrics.killed += n.queue.len() as u64;
                n.queue.clear();
            }
        }
    }

    // Finalize idle-memory accounting for sandboxes still warm at the end.
    for n in &nodes {
        for s in &n.idle {
            metrics.idle_mb_ms += s.memory_mb * (last_us - s.last_used_us) as f64 / 1_000.0;
        }
        // Anything still queued never ran (cluster too small).
        metrics.starved += n.queue.len() as u64;
    }
    metrics.duration_ms = last_us as f64 / 1_000.0;
    metrics.total_cores = (cluster.nodes * cluster.cores_per_node) as u64;
    sink.emit(&TelemetryEvent::RunEnd(RunSummary {
        issued: metrics.arrivals,
        completed: metrics.completions,
        errors: metrics.killed + metrics.starved,
        aborted: false,
        wall_us: last_us,
    }));
    sink.flush();
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keepalive::{FixedTtl, LruPolicy};
    use crate::scheduler::{LeastLoaded, RoundRobin, WarmFirst};
    use faasrail_core::Request;
    use faasrail_workloads::{CostModel, WorkloadPool};

    fn pool() -> WorkloadPool {
        WorkloadPool::vanilla(&CostModel::default_calibration())
    }

    fn trace_of(reqs: Vec<(u64, u32)>) -> RequestTrace {
        RequestTrace {
            duration_minutes: 1 + reqs.iter().map(|r| r.0).max().unwrap_or(0) as usize / 60_000,
            requests: reqs
                .into_iter()
                .map(|(at_ms, w)| Request { at_ms, workload: WorkloadId(w), function_index: w })
                .collect(),
        }
    }

    #[test]
    fn first_invocation_is_cold_second_is_warm() {
        let trace = trace_of(vec![(0, 7), (5_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        assert_eq!(m.arrivals, 2);
        assert_eq!(m.completions, 2);
        assert_eq!(m.cold_starts, 1);
        assert_eq!(m.warm_starts, 1);
    }

    #[test]
    fn ttl_expiry_causes_second_cold_start() {
        // Second request arrives *after* the keep-alive window.
        let trace = trace_of(vec![(0, 7), (120_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl { ttl_ms: 60_000 };
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        assert_eq!(m.cold_starts, 2);
        // Both sandboxes eventually idle out (the second expires at sim end).
        assert_eq!(m.expirations, 2);
    }

    #[test]
    fn memory_pressure_evicts() {
        // Node fits one big sandbox at a time; alternating workloads force
        // eviction on every switch.
        let trace = trace_of(vec![(0, 1), (5_000, 9), (10_000, 1), (15_000, 9)]);
        let mut lb = RoundRobin::default();
        let mut ka = LruPolicy;
        // cnn (id 1) is ~269 MiB, video (id 9) ~128 MiB: 300 MiB node holds
        // only one at a time.
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 300.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        assert_eq!(m.completions, 4);
        assert_eq!(m.cold_starts, 4, "every arrival must cold start");
        assert!(m.evictions >= 3, "evictions = {}", m.evictions);
    }

    #[test]
    fn queueing_when_cores_exhausted() {
        // 1 core, burst of 4 long-ish requests at t=0 → 3 queue.
        let trace = trace_of(vec![(0, 4), (0, 4), (0, 4), (0, 4)]);
        let mut lb = LeastLoaded;
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(1, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        assert_eq!(m.completions, 4);
        assert!(m.max_queue >= 3);
        // Three requests waited in the queue, and the serialized service
        // must show up in the response-time spread.
        assert_eq!(m.queue_wait.total(), 3);
        assert!(m.response.quantile(0.99) > 1.5 * m.response.quantile(0.05));
    }

    #[test]
    fn warm_first_beats_round_robin_on_cold_starts() {
        // 40 requests to one workload over 4 nodes: warm-first concentrates
        // them on the node that already has the sandbox.
        let reqs: Vec<(u64, u32)> = (0..40).map(|i| (i * 2_000, 7)).collect();
        let trace = trace_of(reqs);
        let cluster = ClusterConfig { nodes: 4, ..Default::default() };
        let run = |lb: &mut dyn LoadBalancer| {
            let mut ka = FixedTtl::ten_minutes();
            simulate(&trace, &pool(), &cluster, lb, &mut ka, &SimOptions::default())
        };
        let rr = run(&mut RoundRobin::default());
        let wf = run(&mut WarmFirst);
        assert!(
            wf.cold_starts < rr.cold_starts,
            "warm-first {} vs round-robin {}",
            wf.cold_starts,
            rr.cold_starts
        );
        assert_eq!(wf.cold_starts, 1);
    }

    #[test]
    fn deterministic_without_jitter() {
        let reqs: Vec<(u64, u32)> = (0..50).map(|i| (i * 500, (i % 10) as u32)).collect();
        let trace = trace_of(reqs);
        let run = || {
            let mut lb = LeastLoaded;
            let mut ka = FixedTtl::ten_minutes();
            simulate(
                &trace,
                &pool(),
                &ClusterConfig::default(),
                &mut lb,
                &mut ka,
                &SimOptions::default(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.cold_starts, b.cold_starts);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.idle_mb_ms, b.idle_mb_ms);
    }

    #[test]
    fn idle_memory_accumulates() {
        let trace = trace_of(vec![(0, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = LruPolicy; // no TTL: sandbox idles until sim end
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        // Sim ends at the single finish; no idle time accrues afterwards,
        // so idle_mb_ms is ~0 — but with a TTL the expiry extends the sim.
        let mut ka2 = FixedTtl { ttl_ms: 30_000 };
        let mut lb2 = RoundRobin::default();
        let m2 = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb2,
            &mut ka2,
            &SimOptions::default(),
        );
        assert!(m2.idle_mb_ms > m.idle_mb_ms);
        assert!(m2.idle_mb_ms > 30_000.0 * 30.0, "idle_mb_ms = {}", m2.idle_mb_ms);
    }

    #[test]
    fn hybrid_histogram_adapts_to_interarrival_times() {
        use crate::keepalive::HybridHistogram;
        // A workload invoked every 5 s: the learned TTL should hug ~5.5 s,
        // far below the 10-minute default — so after the run ends its
        // sandbox expires quickly, wasting far less memory than FixedTtl.
        let reqs: Vec<(u64, u32)> = (0..50).map(|i| (i * 5_000, 7)).collect();
        let trace = trace_of(reqs);
        let cluster = ClusterConfig::single_node(4, 4_096.0);
        let mut lb = RoundRobin::default();
        let mut hybrid = HybridHistogram::new();
        let mh = simulate(&trace, &pool(), &cluster, &mut lb, &mut hybrid, &SimOptions::default());
        let mut lb2 = RoundRobin::default();
        let mut fixed = FixedTtl::ten_minutes();
        let mf = simulate(&trace, &pool(), &cluster, &mut lb2, &mut fixed, &SimOptions::default());
        // Same service quality (steady arrivals stay warm under both)...
        assert_eq!(mh.completions, 50);
        assert_eq!(mh.cold_starts, 1, "steady workload must stay warm");
        assert_eq!(mf.cold_starts, 1);
        // ...but the adaptive policy wastes much less idle memory, because
        // the trailing keep-alive window is ~5.5 s instead of 10 min.
        // (During-run idle between 5 s arrivals is identical for both; the
        // saving comes from the trailing window: ~5.5 s vs 600 s.)
        assert!(
            mh.idle_mb_ms * 2.5 < mf.idle_mb_ms,
            "hybrid idle {} vs fixed idle {}",
            mh.idle_mb_ms,
            mf.idle_mb_ms
        );
    }

    #[test]
    fn prewarming_saves_memory_without_extra_cold_starts() {
        use crate::keepalive::HybridHistogram;
        // A periodic workload invoked every 60 s. Plain hybrid keeps the
        // sandbox warm across the whole gap; prewarming expires it early and
        // re-creates it just before the next predicted arrival.
        let reqs: Vec<(u64, u32)> = (0..30).map(|i| (i * 60_000, 7)).collect();
        let trace = trace_of(reqs);
        let cluster = ClusterConfig::single_node(4, 4_096.0);
        let run = |ka: &mut dyn crate::keepalive::KeepAlivePolicy| {
            let mut lb = RoundRobin::default();
            simulate(&trace, &pool(), &cluster, &mut lb, ka, &SimOptions::default())
        };
        let mut plain = HybridHistogram::new();
        let mp = run(&mut plain);
        let mut pre = HybridHistogram::new().with_prewarming();
        let mr = run(&mut pre);
        assert_eq!(mp.completions, 30);
        assert_eq!(mr.completions, 30);
        assert!(mr.prewarms > 10, "prewarms = {}", mr.prewarms);
        // Warm-hit quality comparable after warm-up...
        assert!(
            mr.cold_starts <= mp.cold_starts + 6,
            "prewarming cold {} vs plain {}",
            mr.cold_starts,
            mp.cold_starts
        );
        // ...at substantially less idle memory.
        assert!(
            mr.idle_mb_ms * 1.5 < mp.idle_mb_ms,
            "prewarm idle {} vs plain idle {}",
            mr.idle_mb_ms,
            mp.idle_mb_ms
        );
    }

    #[test]
    fn hybrid_histogram_learns_counts() {
        use crate::keepalive::HybridHistogram;
        let mut p = HybridHistogram::new();
        // Before warm-up: default 10-minute window.
        assert_eq!(p.idle_ttl_ms(WorkloadId(3)), Some(600_000));
        for i in 0..10u64 {
            p.on_arrival(WorkloadId(3), i * 2_000);
        }
        assert_eq!(p.observed(WorkloadId(3)), 10);
        let ttl = p.idle_ttl_ms(WorkloadId(3)).unwrap();
        // Learned ~2 s inter-arrival → TTL near 2.2 s (log-bucket slack).
        assert!((1_500..5_000).contains(&ttl), "learned ttl = {ttl}");
    }

    #[test]
    fn jitter_changes_times_not_counts() {
        let reqs: Vec<(u64, u32)> = (0..20).map(|i| (i * 1_000, 7)).collect();
        let trace = trace_of(reqs);
        let mut lb = LeastLoaded;
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::default(),
            &mut lb,
            &mut ka,
            &SimOptions { service_jitter_sigma: 0.3, seed: 9, ..Default::default() },
        );
        assert_eq!(m.completions, 20);
    }

    #[test]
    fn crash_kills_in_flight_request_but_node_recovers() {
        // The request at t=0 is mid-flight (cold init alone exceeds 1 ms)
        // when the node crashes; the request ten minutes later lands on the
        // restarted node and must cold-start again.
        let trace = trace_of(vec![(0, 7), (600_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions {
                node_faults: vec![NodeFault {
                    node: 0,
                    crash_at_ms: Some(1),
                    ..Default::default()
                }],
                ..Default::default()
            },
        );
        assert_eq!(m.arrivals, 2);
        assert_eq!(m.killed, 1);
        assert_eq!(m.completions, 1);
        assert_eq!(m.cold_starts, 2, "restarted node has no warm state");
        assert_eq!(m.completions + m.starved + m.killed, m.arrivals);
    }

    #[test]
    fn crash_destroys_idle_sandboxes() {
        // First request completes well before the crash at t=60s; its warm
        // sandbox (ten-minute TTL) dies with the node, so the second
        // request cold-starts even though it arrives inside the TTL.
        let trace = trace_of(vec![(0, 7), (120_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions {
                node_faults: vec![NodeFault {
                    node: 0,
                    crash_at_ms: Some(60_000),
                    ..Default::default()
                }],
                ..Default::default()
            },
        );
        assert_eq!(m.killed, 0);
        assert_eq!(m.sandboxes_lost, 1);
        assert_eq!(m.completions, 2);
        assert_eq!(m.cold_starts, 2, "warm cache lost in the crash");
    }

    #[test]
    fn crash_loses_queued_requests_too() {
        // 1 core, burst of 4: one running + three queued when the node
        // dies. Nothing completes, nothing is left starved at drain — the
        // crash accounts for all four.
        let trace = trace_of(vec![(0, 4), (0, 4), (0, 4), (0, 4)]);
        let mut lb = LeastLoaded;
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(1, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions {
                node_faults: vec![NodeFault {
                    node: 0,
                    crash_at_ms: Some(1),
                    ..Default::default()
                }],
                ..Default::default()
            },
        );
        assert_eq!(m.completions, 0);
        assert_eq!(m.killed, 4);
        assert_eq!(m.starved, 0);
        assert_eq!(m.completions + m.starved + m.killed, m.arrivals);
    }

    #[test]
    fn slow_node_inflates_busy_time_not_counts() {
        let reqs: Vec<(u64, u32)> = (0..10).map(|i| (i * 2_000, 7)).collect();
        let run = |faults: Vec<NodeFault>| {
            let mut lb = RoundRobin::default();
            let mut ka = FixedTtl::ten_minutes();
            simulate(
                &trace_of(reqs.clone()),
                &pool(),
                &ClusterConfig::single_node(4, 4_096.0),
                &mut lb,
                &mut ka,
                &SimOptions { node_faults: faults, ..Default::default() },
            )
        };
        let healthy = run(Vec::new());
        let straggler = run(vec![NodeFault { node: 0, slow_factor: 4.0, ..Default::default() }]);
        assert_eq!(straggler.completions, healthy.completions);
        assert!(
            straggler.busy_core_ms > 1.5 * healthy.busy_core_ms,
            "slow node busy {} vs healthy {}",
            straggler.busy_core_ms,
            healthy.busy_core_ms
        );
        assert!(straggler.response.quantile(0.5) > healthy.response.quantile(0.5));
    }

    #[test]
    fn observed_simulation_emits_sim_time_spans() {
        use faasrail_telemetry::RingSink;
        let trace = trace_of(vec![(0, 7), (5_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let sink = RingSink::with_capacity(16);
        let m = simulate_observed(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
            &sink,
        );
        let events = sink.events();
        assert!(matches!(events.first(), Some(TelemetryEvent::RunStart(_))));
        let Some(TelemetryEvent::RunEnd(end)) = events.last() else {
            panic!("stream must end with run_end");
        };
        assert_eq!(end.issued, m.arrivals);
        assert_eq!(end.completed, m.completions);
        assert_eq!(end.errors, 0);

        let spans: Vec<&InvocationSpan> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Invocation(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len() as u64, m.completions);
        assert!(spans[0].cold_start && !spans[1].cold_start);
        for s in &spans {
            assert_eq!(s.outcome, OutcomeClass::Ok);
            assert!(s.dispatched_us <= s.picked_up_us);
            assert!(s.picked_up_us <= s.completed_us);
            assert!(s.service_ms > 0.0);
        }
        // Cold-start init is visible as pickup→completion overhead beyond
        // the service time; the warm invocation has none (virtual time, so
        // the decomposition is exact up to microsecond truncation).
        assert!(spans[0].overhead_s() > 0.0);
        assert_eq!(spans[1].overhead_s(), 0.0);
        // Idle cluster: no queue wait, dispatch == arrival.
        assert_eq!(spans[1].dispatched_us, 5_000_000);
        assert_eq!(spans[1].queue_wait_s(), 0.0);
    }

    #[test]
    fn observed_simulation_records_crash_kills_as_transport_spans() {
        use faasrail_telemetry::RingSink;
        let trace = trace_of(vec![(0, 7), (600_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let sink = RingSink::with_capacity(16);
        let m = simulate_observed(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions {
                node_faults: vec![NodeFault {
                    node: 0,
                    crash_at_ms: Some(1),
                    ..Default::default()
                }],
                ..Default::default()
            },
            &sink,
        );
        assert_eq!(m.killed, 1);
        let events = sink.events();
        let spans: Vec<&InvocationSpan> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Invocation(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        let killed: Vec<_> =
            spans.iter().filter(|s| s.outcome == OutcomeClass::Transport).collect();
        assert_eq!(killed.len(), 1);
        assert_eq!(killed[0].seq, 0, "the t=0 request died in the crash");
        assert_eq!(killed[0].error.as_deref(), Some("node crash"));
        assert_eq!(killed[0].completed_us, 1_000, "killed at the crash instant");
        let Some(TelemetryEvent::RunEnd(end)) = events.last() else {
            panic!("stream must end with run_end");
        };
        assert_eq!(end.errors, m.killed + m.starved);
    }

    #[test]
    fn out_of_range_fault_node_is_ignored() {
        let trace = trace_of(vec![(0, 7), (1_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions {
                node_faults: vec![NodeFault { node: 99, crash_at_ms: Some(1), slow_factor: 10.0 }],
                ..Default::default()
            },
        );
        assert_eq!(m.completions, 2);
        assert_eq!(m.killed, 0);
        assert_eq!(m.sandboxes_lost, 0);
    }
}

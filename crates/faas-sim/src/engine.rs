//! The discrete-event cluster simulation engine.
//!
//! Replays a schedule of arrivals against a virtual cluster in virtual
//! time: arrivals are load-balanced to nodes, served warm when an idle
//! sandbox exists, cold-started when memory allows (evicting per the
//! keep-alive policy), and queued FIFO otherwise. The engine measures
//! exactly the quantities the paper's motivating research areas care
//! about: cold-start counts, response times, memory wasted by idle
//! sandboxes, and per-node utilization.
//!
//! The engine is generic over [`ScheduleSource`]: a materialized
//! [`RequestTrace`](faasrail_core::RequestTrace) replays exact requests,
//! while a lazy [`ArrivalStream`](faasrail_core::ArrivalStream) generates
//! arrivals on demand — the event heap only ever holds the *active
//! horizon* (in-flight finishes, pending expiries, scheduled faults), so
//! peak memory is independent of how many invocations the schedule
//! contains. That is what lets one machine simulate a full Azure day
//! (~10⁹ invocations) without materializing the request vector.

use crate::cluster::ClusterConfig;
use crate::keepalive::{IdleSandbox, KeepAlivePolicy};
use crate::metrics::SimMetrics;
use crate::scheduler::{LoadBalancer, NodeView};
use faasrail_core::{Arrival, ArrivalCursor, ScheduleSource};
use faasrail_stats::sampler::{LogNormal, Sampler};
use faasrail_stats::seeded_rng;
use faasrail_telemetry::{
    EventSink, InvocationSpan, NullSink, OutcomeClass, RunInfo, RunSummary, TelemetryEvent,
};
use faasrail_workloads::{WorkloadId, WorkloadPool};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A node-level fault injected into the virtual cluster — the simulator's
/// counterpart of the gateway's seeded connection faults. Crashes model a
/// worker machine dying mid-experiment (everything in flight lost, the
/// warm-sandbox cache gone); slow factors model persistent stragglers
/// (thermal throttling, noisy neighbours) that degrade service without
/// failing outright.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFault {
    /// Which node (index into the cluster).
    pub node: u32,
    /// Crash the node at this virtual instant (ms from experiment start):
    /// running invocations are killed, queued requests are lost, and all
    /// idle sandboxes vanish. The node restarts immediately with cold
    /// memory and keeps serving later arrivals.
    pub crash_at_ms: Option<u64>,
    /// Persistent service-time multiplier for this node (`1.0` = healthy,
    /// `3.0` = three times slower). Applies to service time only — cold
    /// start initialization is memory-bound, not core-bound, in this model.
    pub slow_factor: f64,
}

impl Default for NodeFault {
    fn default() -> Self {
        NodeFault { node: 0, crash_at_ms: None, slow_factor: 1.0 }
    }
}

/// Engine options.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Log-normal sigma for per-invocation service-time jitter around the
    /// workload's mean (0 = deterministic service times).
    pub service_jitter_sigma: f64,
    /// RNG seed for the jitter.
    pub seed: u64,
    /// Node-level faults (crashes, slow nodes); empty = healthy cluster.
    pub node_faults: Vec<NodeFault>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { service_jitter_sigma: 0.0, seed: 0, node_faults: Vec::new() }
    }
}

/// Internal (non-arrival) events. Arrivals never enter the heap: they are
/// pulled from the schedule cursor and interleaved by timestamp, with
/// arrivals winning ties — the same order the historic all-arrivals-in-heap
/// implementation produced, where every arrival's sequence number preceded
/// every dynamically scheduled event's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// An invocation finished on `node`; `key` identifies the slab entry.
    Finish { node: u32, key: u64 },
    /// TTL check for the idle sandbox carrying `stamp` in `node`'s bucket
    /// for `workload`.
    Expire { node: u32, workload: WorkloadId, stamp: u64 },
    /// Predictively re-create a warm sandbox for `workload` on `node`.
    Prewarm { node: u32, workload: WorkloadId },
    /// `node` crashes: in-flight and queued work is lost, warm state gone.
    Crash { node: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at_us: u64,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy)]
struct Sandbox {
    workload: WorkloadId,
    memory_mb: f64,
    last_used_us: u64,
    init_cost_ms: f64,
    uses: u64,
    stamp: u64,
}

#[derive(Debug, Clone, Copy)]
struct QueuedReq {
    /// Arrival sequence number (0-based, schedule order) — the span `seq`.
    arrival_seq: u64,
    /// Originating Function, carried through for the span.
    function_index: u32,
    arrived_us: u64,
    workload: WorkloadId,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    node: u32,
    sandbox: Sandbox,
    arrival_seq: u64,
    function_index: u32,
    arrived_us: u64,
    /// Virtual instant the invocation left the queue and began executing.
    started_us: u64,
    /// Jitter/slowdown-adjusted service time (excludes cold-start init).
    service_ms: f64,
    started_cold: bool,
}

/// In-flight invocations in a generation-stamped slab. Keys are
/// `generation << 32 | slot`: a slot freed by a crash and later reused
/// keeps the stale Finish event harmless (its generation no longer
/// matches), which is how crash tombstones work without a hash map on the
/// hot path. Occupancy is bounded by the cluster's core count.
#[derive(Default)]
struct RunSlab {
    slots: Vec<(u32, Option<Running>)>,
    free: Vec<u32>,
}

impl RunSlab {
    fn with_capacity(cap: usize) -> Self {
        RunSlab { slots: Vec::with_capacity(cap), free: Vec::new() }
    }

    fn insert(&mut self, run: Running) -> u64 {
        let idx = match self.free.pop() {
            Some(i) => i as usize,
            None => {
                self.slots.push((0, None));
                self.slots.len() - 1
            }
        };
        let slot = &mut self.slots[idx];
        debug_assert!(slot.1.is_none());
        slot.1 = Some(run);
        ((slot.0 as u64) << 32) | idx as u64
    }

    fn remove(&mut self, key: u64) -> Option<Running> {
        let idx = (key & 0xFFFF_FFFF) as usize;
        let generation = (key >> 32) as u32;
        let slot = self.slots.get_mut(idx)?;
        if slot.0 != generation {
            return None;
        }
        let run = slot.1.take()?;
        slot.0 = slot.0.wrapping_add(1);
        self.free.push(idx as u32);
        Some(run)
    }

    /// Remove and return every entry running on `node` (crash path).
    fn take_node(&mut self, node: u32) -> Vec<Running> {
        let mut doomed = Vec::new();
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if slot.1.is_some_and(|r| r.node == node) {
                doomed.push(slot.1.take().expect("checked occupied"));
                slot.0 = slot.0.wrapping_add(1);
                self.free.push(idx as u32);
            }
        }
        doomed
    }
}

struct Node {
    free_memory_mb: f64,
    busy_cores: usize,
    /// Idle sandboxes, bucketed by workload id (`WorkloadId` indexes the
    /// pool, so buckets are dense). Warm lookup and the balancer's warm
    /// count are O(1) instead of scanning one flat vector per arrival.
    idle: Vec<Vec<Sandbox>>,
    queue: VecDeque<QueuedReq>,
}

impl Node {
    fn idle_len(&self) -> usize {
        self.idle.iter().map(Vec::len).sum()
    }
}

/// Account a sandbox's idle time up to `now_us` when it leaves the idle
/// set (reuse, eviction, expiry, crash).
fn account_idle(metrics: &mut SimMetrics, s: &Sandbox, now_us: u64) {
    metrics.idle_mb_ms += s.memory_mb * (now_us - s.last_used_us) as f64 / 1_000.0;
}

/// Shared mutable simulation state; methods replace what used to be free
/// functions threading fifteen parameters each.
struct Engine<'a> {
    pool: &'a WorkloadPool,
    cluster: &'a ClusterConfig,
    jitter: Option<LogNormal>,
    rng: rand::rngs::StdRng,
    slow: Vec<f64>,
    nodes: Vec<Node>,
    heap: BinaryHeap<Reverse<Event>>,
    /// Internal event sequence; crashes are pushed first so that, among
    /// equal timestamps, a crash fires before any Finish/Expire/Prewarm —
    /// exactly the historic ordering.
    seq: u64,
    next_stamp: u64,
    running: RunSlab,
    /// Requests queued across all nodes, maintained incrementally so
    /// `max_queue` needs no per-arrival scan.
    queued_total: u64,
    /// Scratch for the per-arrival balancer view (allocated once).
    views: Vec<NodeView>,
    metrics: SimMetrics,
}

impl Engine<'_> {
    fn push_event(&mut self, at_us: u64, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event { at_us, seq: self.seq, kind }));
    }

    /// Try to start `req` on `node_idx` at `now_us`. Returns false if it
    /// must queue. On success, schedules the Finish event.
    fn try_start(
        &mut self,
        node_idx: usize,
        req: QueuedReq,
        now_us: u64,
        policy: &mut dyn KeepAlivePolicy,
    ) -> bool {
        if self.nodes[node_idx].busy_cores >= self.cluster.cores_per_node {
            return false;
        }
        let w = self.pool.get(req.workload).expect("workload in pool");
        let mut service_ms = w.mean_ms * self.slow[node_idx];
        if let Some(j) = &self.jitter {
            service_ms *= j.sample(&mut self.rng);
        }

        let node = &mut self.nodes[node_idx];
        let bucket = req.workload.0 as usize;
        let (sandbox, cold) = if let Some(mut s) = node.idle[bucket].pop() {
            account_idle(&mut self.metrics, &s, now_us);
            s.uses += 1;
            (s, false)
        } else {
            // Need memory for a new sandbox; evict per policy while short.
            while node.free_memory_mb < w.memory_mb {
                // The policy sees one flat view (bucket-major order) and
                // answers with an index into it; map that back to a
                // (bucket, position) pair. Eviction is the cold path — the
                // flat view is only ever built here.
                let mut idle_view: Vec<IdleSandbox> = Vec::with_capacity(node.idle_len());
                let mut locations: Vec<(u32, u32)> = Vec::with_capacity(idle_view.capacity());
                for (b, sandboxes) in node.idle.iter().enumerate() {
                    for (pos, s) in sandboxes.iter().enumerate() {
                        idle_view.push(IdleSandbox {
                            workload: s.workload,
                            memory_mb: s.memory_mb,
                            last_used_ms: s.last_used_us / 1_000,
                            init_cost_ms: s.init_cost_ms,
                            uses: s.uses,
                        });
                        locations.push((b as u32, pos as u32));
                    }
                }
                match policy.pick_victim(&idle_view, now_us / 1_000) {
                    Some(victim) => {
                        let (b, pos) = locations[victim];
                        let s = node.idle[b as usize].swap_remove(pos as usize);
                        account_idle(&mut self.metrics, &s, now_us);
                        node.free_memory_mb += s.memory_mb;
                        self.metrics.evictions += 1;
                    }
                    None => return false,
                }
            }
            node.free_memory_mb -= w.memory_mb;
            self.next_stamp += 1;
            (
                Sandbox {
                    workload: req.workload,
                    memory_mb: w.memory_mb,
                    last_used_us: now_us,
                    init_cost_ms: self.cluster.cold_start.delay_ms(w.memory_mb),
                    uses: 1,
                    stamp: self.next_stamp,
                },
                true,
            )
        };

        node.busy_cores += 1;
        let total_ms = service_ms + if cold { sandbox.init_cost_ms } else { 0.0 };
        if cold {
            self.metrics.cold_starts += 1;
        } else {
            self.metrics.warm_starts += 1;
        }
        self.metrics.busy_core_ms += total_ms;
        self.metrics.per_node_busy_ms[node_idx] += total_ms;
        let finish_us = now_us + (total_ms * 1_000.0) as u64;
        let run_key = self.running.insert(Running {
            node: node_idx as u32,
            sandbox,
            arrival_seq: req.arrival_seq,
            function_index: req.function_index,
            arrived_us: req.arrived_us,
            started_us: now_us,
            service_ms,
            started_cold: cold,
        });
        self.push_event(finish_us, EventKind::Finish { node: node_idx as u32, key: run_key });
        true
    }

    /// Start as many queued requests as now fit (FIFO head-of-line).
    fn drain_queue(&mut self, node_idx: usize, now_us: u64, policy: &mut dyn KeepAlivePolicy) {
        while let Some(&front) = self.nodes[node_idx].queue.front() {
            if self.try_start(node_idx, front, now_us, policy) {
                let waited = (now_us - front.arrived_us) as f64 / 1e6;
                self.metrics.queue_wait.record(waited.max(1e-9));
                self.nodes[node_idx].queue.pop_front();
                self.queued_total -= 1;
            } else {
                break;
            }
        }
    }
}

/// Run the simulation.
pub fn simulate<S: ScheduleSource + ?Sized>(
    source: &S,
    pool: &WorkloadPool,
    cluster: &ClusterConfig,
    balancer: &mut dyn LoadBalancer,
    policy: &mut dyn KeepAlivePolicy,
    opts: &SimOptions,
) -> SimMetrics {
    simulate_observed(source, pool, cluster, balancer, policy, opts, &NullSink)
}

/// Run the simulation, emitting a telemetry event stream as it goes.
///
/// The emitted spans carry *virtual* timestamps (microseconds of simulated
/// time since experiment start), so the same `faasrail report` pipeline
/// that digests a wall-clock replay log works on simulator output:
/// `dispatched_us` is the arrival instant (the simulator's open-loop
/// schedule never lags), `picked_up_us` is when a core started executing
/// the invocation (queue wait in between), and cold-start initialization
/// shows up as overhead between pickup and completion beyond `service_ms`.
/// Invocations killed by a node crash become [`OutcomeClass::Transport`]
/// spans; requests still queued when a node dies (or starved at the end of
/// the run) never started and get no span. Span `seq` is the arrival's
/// 0-based position in schedule (time) order.
///
/// When the sink reports [`enabled() == false`](EventSink::enabled) — true
/// of the [`NullSink`] the plain [`simulate`] uses — per-invocation span
/// construction is skipped entirely, which matters at 10⁹ completions.
#[allow(clippy::too_many_arguments)]
pub fn simulate_observed<S: ScheduleSource + ?Sized>(
    source: &S,
    pool: &WorkloadPool,
    cluster: &ClusterConfig,
    balancer: &mut dyn LoadBalancer,
    policy: &mut dyn KeepAlivePolicy,
    opts: &SimOptions,
    sink: &dyn EventSink,
) -> SimMetrics {
    cluster.validate().expect("invalid cluster");
    sink.emit(&TelemetryEvent::RunStart(RunInfo {
        requests: source.arrivals_hint(),
        duration_minutes: source.duration_minutes() as u64,
        workers: (cluster.nodes * cluster.cores_per_node) as u64,
        pacing: "simulated".to_string(),
        compression: 1.0,
    }));
    let spans_enabled = sink.enabled();

    let mut metrics = SimMetrics::new(policy.name(), balancer.name());
    metrics.per_node_busy_ms = vec![0.0; cluster.nodes];
    let total_cores = cluster.nodes * cluster.cores_per_node;
    let mut engine = Engine {
        pool,
        cluster,
        jitter: (opts.service_jitter_sigma > 0.0)
            .then(|| LogNormal::new(0.0, opts.service_jitter_sigma)),
        rng: seeded_rng(opts.seed),
        slow: vec![1.0f64; cluster.nodes],
        nodes: (0..cluster.nodes)
            .map(|_| Node {
                free_memory_mb: cluster.memory_mb_per_node,
                busy_cores: 0,
                idle: vec![Vec::new(); pool.len()],
                queue: VecDeque::new(),
            })
            .collect(),
        // The heap holds the *active horizon* only — at most one Finish
        // per busy core, plus scheduled faults and a bounded population of
        // expiry/prewarm timers — never the whole schedule.
        heap: BinaryHeap::with_capacity(total_cores + opts.node_faults.len() + 64),
        seq: 0,
        next_stamp: 0,
        running: RunSlab::with_capacity(total_cores),
        queued_total: 0,
        views: Vec::with_capacity(cluster.nodes),
        metrics,
    };

    // Node-fault setup: per-node service slowdown, plus scheduled crashes.
    for f in &opts.node_faults {
        let Some(s) = engine.slow.get_mut(f.node as usize) else { continue };
        *s *= f.slow_factor;
        if let Some(crash_ms) = f.crash_at_ms {
            engine.push_event(crash_ms * 1_000, EventKind::Crash { node: f.node });
        }
    }

    let mut cursor = source.cursor();
    let mut pending = cursor.next_arrival();
    let mut arrival_seq: u64 = 0;
    let mut last_us = 0u64;

    loop {
        // Interleave the arrival stream with the internal event heap;
        // arrivals win ties (see `EventKind`).
        let take_arrival = match (&pending, engine.heap.peek()) {
            (Some(a), Some(&Reverse(ev))) => a.at_ms * 1_000 <= ev.at_us,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        engine.metrics.sim_events += 1;

        if take_arrival {
            let Arrival { at_ms, workload, function_index } =
                pending.take().expect("checked above");
            pending = cursor.next_arrival();
            let now_us = at_ms * 1_000;
            last_us = last_us.max(now_us);

            engine.metrics.arrivals += 1;
            policy.on_arrival(workload, now_us / 1_000);
            let bucket = workload.0 as usize;
            engine.views.clear();
            for n in &engine.nodes {
                engine.views.push(NodeView {
                    warm_for_workload: n.idle[bucket].len(),
                    free_memory_mb: n.free_memory_mb,
                    running: n.busy_cores,
                    queued: n.queue.len(),
                    cores: cluster.cores_per_node,
                });
            }
            let target = balancer.pick_node(workload, &engine.views).min(engine.nodes.len() - 1);
            let req = QueuedReq { arrival_seq, function_index, arrived_us: now_us, workload };
            arrival_seq += 1;
            if !engine.try_start(target, req, now_us, policy) {
                engine.nodes[target].queue.push_back(req);
                engine.queued_total += 1;
                engine.metrics.max_queue = engine.metrics.max_queue.max(engine.queued_total);
            }
            continue;
        }

        let Reverse(ev) = engine.heap.pop().expect("checked above");
        let now_us = ev.at_us;
        last_us = last_us.max(now_us);
        match ev.kind {
            EventKind::Finish { node, key } => {
                // A missing entry is a tombstone: the invocation was killed
                // by a node crash before its finish event fired.
                let Some(run) = engine.running.remove(key) else { continue };
                debug_assert_eq!(run.node, node);
                debug_assert!(run.started_cold || run.sandbox.uses >= 1);
                let n = &mut engine.nodes[node as usize];
                n.busy_cores -= 1;
                engine.metrics.completions += 1;
                // Response includes queueing and (for cold starts) the
                // sandbox creation delay by construction.
                engine.metrics.response.record(((now_us - run.arrived_us) as f64 / 1e6).max(1e-9));
                if spans_enabled {
                    sink.emit(&TelemetryEvent::Invocation(InvocationSpan {
                        trace_id: 0, // single-tier: nothing to join against
                        seq: run.arrival_seq,
                        workload: run.sandbox.workload.0 as u64,
                        function_index: run.function_index,
                        scheduled_ms: run.arrived_us / 1_000,
                        target_us: run.arrived_us,
                        dispatched_us: run.arrived_us,
                        picked_up_us: run.started_us,
                        completed_us: now_us,
                        service_ms: run.service_ms,
                        outcome: OutcomeClass::Ok,
                        cold_start: run.started_cold,
                        error: None,
                    }));
                }

                // Idle the sandbox.
                engine.next_stamp += 1;
                let mut s = run.sandbox;
                s.last_used_us = now_us;
                s.stamp = engine.next_stamp;
                let stamp = s.stamp;
                let workload = s.workload;
                engine.nodes[node as usize].idle[workload.0 as usize].push(s);
                if let Some(ttl_ms) = policy.idle_ttl_ms(workload) {
                    engine.push_event(
                        now_us + ttl_ms * 1_000,
                        EventKind::Expire { node, workload, stamp },
                    );
                }

                // Drain the node's queue (FIFO head-of-line).
                engine.drain_queue(node as usize, now_us, policy);
            }
            EventKind::Expire { node, workload, stamp } => {
                let n = &mut engine.nodes[node as usize];
                let bucket = &mut n.idle[workload.0 as usize];
                if let Some(pos) = bucket.iter().position(|s| s.stamp == stamp) {
                    let s = bucket.swap_remove(pos);
                    account_idle(&mut engine.metrics, &s, now_us);
                    n.free_memory_mb += s.memory_mb;
                    engine.metrics.expirations += 1;
                    // Predictive prewarming: re-create the sandbox shortly
                    // before the workload's expected next arrival. Only
                    // sandboxes that actually served invocations re-arm —
                    // a prewarmed sandbox expiring *unused* must not
                    // re-prewarm, or the cycle would self-sustain forever.
                    if s.uses > 0 {
                        if let Some(after_ms) = policy.prewarm_after_ms(s.workload) {
                            let at_us = s.last_used_us.saturating_add(after_ms * 1_000);
                            if at_us > now_us {
                                engine.push_event(
                                    at_us,
                                    EventKind::Prewarm { node, workload: s.workload },
                                );
                            }
                        }
                    }
                    // Freed memory may unblock the head of the queue.
                    engine.drain_queue(node as usize, now_us, policy);
                }
            }
            EventKind::Prewarm { node, workload } => {
                let w = pool.get(workload).expect("workload in pool");
                let n = &mut engine.nodes[node as usize];
                let bucket = &mut n.idle[workload.0 as usize];
                if bucket.is_empty() && n.free_memory_mb >= w.memory_mb {
                    n.free_memory_mb -= w.memory_mb;
                    engine.next_stamp += 1;
                    let stamp = engine.next_stamp;
                    bucket.push(Sandbox {
                        workload,
                        memory_mb: w.memory_mb,
                        last_used_us: now_us,
                        init_cost_ms: cluster.cold_start.delay_ms(w.memory_mb),
                        uses: 0,
                        stamp,
                    });
                    engine.metrics.prewarms += 1;
                    if let Some(ttl_ms) = policy.idle_ttl_ms(workload) {
                        engine.push_event(
                            now_us + ttl_ms * 1_000,
                            EventKind::Expire { node, workload, stamp },
                        );
                    }
                }
            }
            EventKind::Crash { node } => {
                if node as usize >= engine.nodes.len() {
                    continue;
                }
                // In-flight invocations die with the node; their Finish
                // events become tombstones (the Finish arm tolerates a
                // dead slab generation).
                for run in engine.running.take_node(node) {
                    engine.metrics.killed += 1;
                    if spans_enabled {
                        sink.emit(&TelemetryEvent::Invocation(InvocationSpan {
                            trace_id: 0, // single-tier: nothing to join against
                            seq: run.arrival_seq,
                            workload: run.sandbox.workload.0 as u64,
                            function_index: run.function_index,
                            scheduled_ms: run.arrived_us / 1_000,
                            target_us: run.arrived_us,
                            dispatched_us: run.arrived_us,
                            picked_up_us: run.started_us,
                            completed_us: now_us,
                            service_ms: 0.0,
                            outcome: OutcomeClass::Transport,
                            cold_start: run.started_cold,
                            error: Some("node crash".to_string()),
                        }));
                    }
                }
                let n = &mut engine.nodes[node as usize];
                n.busy_cores = 0;
                // Warm state is gone: account idle time up to the crash,
                // then drop every sandbox.
                for bucket in &mut n.idle {
                    for s in bucket.drain(..) {
                        engine.metrics.idle_mb_ms +=
                            s.memory_mb * (now_us - s.last_used_us) as f64 / 1_000.0;
                        engine.metrics.sandboxes_lost += 1;
                    }
                }
                n.free_memory_mb = cluster.memory_mb_per_node;
                // Queued work on the node is lost too.
                engine.metrics.killed += n.queue.len() as u64;
                engine.queued_total -= n.queue.len() as u64;
                n.queue.clear();
            }
        }
    }

    // Finalize idle-memory accounting for sandboxes still warm at the end.
    metrics = engine.metrics;
    for n in &engine.nodes {
        for bucket in &n.idle {
            for s in bucket {
                metrics.idle_mb_ms += s.memory_mb * (last_us - s.last_used_us) as f64 / 1_000.0;
            }
        }
        // Anything still queued never ran (cluster too small).
        metrics.starved += n.queue.len() as u64;
    }
    metrics.duration_ms = last_us as f64 / 1_000.0;
    metrics.total_cores = total_cores as u64;
    sink.emit(&TelemetryEvent::RunEnd(RunSummary {
        issued: metrics.arrivals,
        completed: metrics.completions,
        errors: metrics.killed + metrics.starved,
        aborted: false,
        wall_us: last_us,
    }));
    sink.flush();
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keepalive::{FixedTtl, LruPolicy};
    use crate::scheduler::{LeastLoaded, RoundRobin, WarmFirst};
    use faasrail_core::{Request, RequestTrace};
    use faasrail_workloads::{CostModel, WorkloadPool};

    fn pool() -> WorkloadPool {
        WorkloadPool::vanilla(&CostModel::default_calibration())
    }

    fn trace_of(reqs: Vec<(u64, u32)>) -> RequestTrace {
        RequestTrace {
            duration_minutes: 1 + reqs.iter().map(|r| r.0).max().unwrap_or(0) as usize / 60_000,
            requests: reqs
                .into_iter()
                .map(|(at_ms, w)| Request { at_ms, workload: WorkloadId(w), function_index: w })
                .collect(),
        }
    }

    #[test]
    fn first_invocation_is_cold_second_is_warm() {
        let trace = trace_of(vec![(0, 7), (5_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        assert_eq!(m.arrivals, 2);
        assert_eq!(m.completions, 2);
        assert_eq!(m.cold_starts, 1);
        assert_eq!(m.warm_starts, 1);
    }

    #[test]
    fn ttl_expiry_causes_second_cold_start() {
        // Second request arrives *after* the keep-alive window.
        let trace = trace_of(vec![(0, 7), (120_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl { ttl_ms: 60_000 };
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        assert_eq!(m.cold_starts, 2);
        // Both sandboxes eventually idle out (the second expires at sim end).
        assert_eq!(m.expirations, 2);
    }

    #[test]
    fn memory_pressure_evicts() {
        // Node fits one big sandbox at a time; alternating workloads force
        // eviction on every switch.
        let trace = trace_of(vec![(0, 1), (5_000, 9), (10_000, 1), (15_000, 9)]);
        let mut lb = RoundRobin::default();
        let mut ka = LruPolicy;
        // cnn (id 1) is ~269 MiB, video (id 9) ~128 MiB: 300 MiB node holds
        // only one at a time.
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 300.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        assert_eq!(m.completions, 4);
        assert_eq!(m.cold_starts, 4, "every arrival must cold start");
        assert!(m.evictions >= 3, "evictions = {}", m.evictions);
    }

    #[test]
    fn queueing_when_cores_exhausted() {
        // 1 core, burst of 4 long-ish requests at t=0 → 3 queue.
        let trace = trace_of(vec![(0, 4), (0, 4), (0, 4), (0, 4)]);
        let mut lb = LeastLoaded;
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(1, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        assert_eq!(m.completions, 4);
        assert!(m.max_queue >= 3);
        // Three requests waited in the queue, and the serialized service
        // must show up in the response-time spread.
        assert_eq!(m.queue_wait.total(), 3);
        assert!(m.response.quantile(0.99) > 1.5 * m.response.quantile(0.05));
    }

    #[test]
    fn warm_first_beats_round_robin_on_cold_starts() {
        // 40 requests to one workload over 4 nodes: warm-first concentrates
        // them on the node that already has the sandbox.
        let reqs: Vec<(u64, u32)> = (0..40).map(|i| (i * 2_000, 7)).collect();
        let trace = trace_of(reqs);
        let cluster = ClusterConfig { nodes: 4, ..Default::default() };
        let run = |lb: &mut dyn LoadBalancer| {
            let mut ka = FixedTtl::ten_minutes();
            simulate(&trace, &pool(), &cluster, lb, &mut ka, &SimOptions::default())
        };
        let rr = run(&mut RoundRobin::default());
        let wf = run(&mut WarmFirst);
        assert!(
            wf.cold_starts < rr.cold_starts,
            "warm-first {} vs round-robin {}",
            wf.cold_starts,
            rr.cold_starts
        );
        assert_eq!(wf.cold_starts, 1);
    }

    #[test]
    fn deterministic_without_jitter() {
        let reqs: Vec<(u64, u32)> = (0..50).map(|i| (i * 500, (i % 10) as u32)).collect();
        let trace = trace_of(reqs);
        let run = || {
            let mut lb = LeastLoaded;
            let mut ka = FixedTtl::ten_minutes();
            simulate(
                &trace,
                &pool(),
                &ClusterConfig::default(),
                &mut lb,
                &mut ka,
                &SimOptions::default(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.cold_starts, b.cold_starts);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.idle_mb_ms, b.idle_mb_ms);
    }

    #[test]
    fn idle_memory_accumulates() {
        let trace = trace_of(vec![(0, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = LruPolicy; // no TTL: sandbox idles until sim end
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        // Sim ends at the single finish; no idle time accrues afterwards,
        // so idle_mb_ms is ~0 — but with a TTL the expiry extends the sim.
        let mut ka2 = FixedTtl { ttl_ms: 30_000 };
        let mut lb2 = RoundRobin::default();
        let m2 = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb2,
            &mut ka2,
            &SimOptions::default(),
        );
        assert!(m2.idle_mb_ms > m.idle_mb_ms);
        assert!(m2.idle_mb_ms > 30_000.0 * 30.0, "idle_mb_ms = {}", m2.idle_mb_ms);
    }

    #[test]
    fn hybrid_histogram_adapts_to_interarrival_times() {
        use crate::keepalive::HybridHistogram;
        // A workload invoked every 5 s: the learned TTL should hug ~5.5 s,
        // far below the 10-minute default — so after the run ends its
        // sandbox expires quickly, wasting far less memory than FixedTtl.
        let reqs: Vec<(u64, u32)> = (0..50).map(|i| (i * 5_000, 7)).collect();
        let trace = trace_of(reqs);
        let cluster = ClusterConfig::single_node(4, 4_096.0);
        let mut lb = RoundRobin::default();
        let mut hybrid = HybridHistogram::new();
        let mh = simulate(&trace, &pool(), &cluster, &mut lb, &mut hybrid, &SimOptions::default());
        let mut lb2 = RoundRobin::default();
        let mut fixed = FixedTtl::ten_minutes();
        let mf = simulate(&trace, &pool(), &cluster, &mut lb2, &mut fixed, &SimOptions::default());
        // Same service quality (steady arrivals stay warm under both)...
        assert_eq!(mh.completions, 50);
        assert_eq!(mh.cold_starts, 1, "steady workload must stay warm");
        assert_eq!(mf.cold_starts, 1);
        // ...but the adaptive policy wastes much less idle memory, because
        // the trailing keep-alive window is ~5.5 s instead of 10 min.
        // (During-run idle between 5 s arrivals is identical for both; the
        // saving comes from the trailing window: ~5.5 s vs 600 s.)
        assert!(
            mh.idle_mb_ms * 2.5 < mf.idle_mb_ms,
            "hybrid idle {} vs fixed idle {}",
            mh.idle_mb_ms,
            mf.idle_mb_ms
        );
    }

    #[test]
    fn prewarming_saves_memory_without_extra_cold_starts() {
        use crate::keepalive::HybridHistogram;
        // A periodic workload invoked every 60 s. Plain hybrid keeps the
        // sandbox warm across the whole gap; prewarming expires it early and
        // re-creates it just before the next predicted arrival.
        let reqs: Vec<(u64, u32)> = (0..30).map(|i| (i * 60_000, 7)).collect();
        let trace = trace_of(reqs);
        let cluster = ClusterConfig::single_node(4, 4_096.0);
        let run = |ka: &mut dyn crate::keepalive::KeepAlivePolicy| {
            let mut lb = RoundRobin::default();
            simulate(&trace, &pool(), &cluster, &mut lb, ka, &SimOptions::default())
        };
        let mut plain = HybridHistogram::new();
        let mp = run(&mut plain);
        let mut pre = HybridHistogram::new().with_prewarming();
        let mr = run(&mut pre);
        assert_eq!(mp.completions, 30);
        assert_eq!(mr.completions, 30);
        assert!(mr.prewarms > 10, "prewarms = {}", mr.prewarms);
        // Warm-hit quality comparable after warm-up...
        assert!(
            mr.cold_starts <= mp.cold_starts + 6,
            "prewarming cold {} vs plain {}",
            mr.cold_starts,
            mp.cold_starts
        );
        // ...at substantially less idle memory.
        assert!(
            mr.idle_mb_ms * 1.5 < mp.idle_mb_ms,
            "prewarm idle {} vs plain idle {}",
            mr.idle_mb_ms,
            mp.idle_mb_ms
        );
    }

    #[test]
    fn hybrid_histogram_learns_counts() {
        use crate::keepalive::HybridHistogram;
        let mut p = HybridHistogram::new();
        // Before warm-up: default 10-minute window.
        assert_eq!(p.idle_ttl_ms(WorkloadId(3)), Some(600_000));
        for i in 0..10u64 {
            p.on_arrival(WorkloadId(3), i * 2_000);
        }
        assert_eq!(p.observed(WorkloadId(3)), 10);
        let ttl = p.idle_ttl_ms(WorkloadId(3)).unwrap();
        // Learned ~2 s inter-arrival → TTL near 2.2 s (log-bucket slack).
        assert!((1_500..5_000).contains(&ttl), "learned ttl = {ttl}");
    }

    #[test]
    fn jitter_changes_times_not_counts() {
        let reqs: Vec<(u64, u32)> = (0..20).map(|i| (i * 1_000, 7)).collect();
        let trace = trace_of(reqs);
        let mut lb = LeastLoaded;
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::default(),
            &mut lb,
            &mut ka,
            &SimOptions { service_jitter_sigma: 0.3, seed: 9, ..Default::default() },
        );
        assert_eq!(m.completions, 20);
    }

    #[test]
    fn crash_kills_in_flight_request_but_node_recovers() {
        // The request at t=0 is mid-flight (cold init alone exceeds 1 ms)
        // when the node crashes; the request ten minutes later lands on the
        // restarted node and must cold-start again.
        let trace = trace_of(vec![(0, 7), (600_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions {
                node_faults: vec![NodeFault {
                    node: 0,
                    crash_at_ms: Some(1),
                    ..Default::default()
                }],
                ..Default::default()
            },
        );
        assert_eq!(m.arrivals, 2);
        assert_eq!(m.killed, 1);
        assert_eq!(m.completions, 1);
        assert_eq!(m.cold_starts, 2, "restarted node has no warm state");
        assert_eq!(m.completions + m.starved + m.killed, m.arrivals);
    }

    #[test]
    fn crash_destroys_idle_sandboxes() {
        // First request completes well before the crash at t=60s; its warm
        // sandbox (ten-minute TTL) dies with the node, so the second
        // request cold-starts even though it arrives inside the TTL.
        let trace = trace_of(vec![(0, 7), (120_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions {
                node_faults: vec![NodeFault {
                    node: 0,
                    crash_at_ms: Some(60_000),
                    ..Default::default()
                }],
                ..Default::default()
            },
        );
        assert_eq!(m.killed, 0);
        assert_eq!(m.sandboxes_lost, 1);
        assert_eq!(m.completions, 2);
        assert_eq!(m.cold_starts, 2, "warm cache lost in the crash");
    }

    #[test]
    fn crash_loses_queued_requests_too() {
        // 1 core, burst of 4: one running + three queued when the node
        // dies. Nothing completes, nothing is left starved at drain — the
        // crash accounts for all four.
        let trace = trace_of(vec![(0, 4), (0, 4), (0, 4), (0, 4)]);
        let mut lb = LeastLoaded;
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(1, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions {
                node_faults: vec![NodeFault {
                    node: 0,
                    crash_at_ms: Some(1),
                    ..Default::default()
                }],
                ..Default::default()
            },
        );
        assert_eq!(m.completions, 0);
        assert_eq!(m.killed, 4);
        assert_eq!(m.starved, 0);
        assert_eq!(m.completions + m.starved + m.killed, m.arrivals);
    }

    #[test]
    fn slow_node_inflates_busy_time_not_counts() {
        let reqs: Vec<(u64, u32)> = (0..10).map(|i| (i * 2_000, 7)).collect();
        let run = |faults: Vec<NodeFault>| {
            let mut lb = RoundRobin::default();
            let mut ka = FixedTtl::ten_minutes();
            simulate(
                &trace_of(reqs.clone()),
                &pool(),
                &ClusterConfig::single_node(4, 4_096.0),
                &mut lb,
                &mut ka,
                &SimOptions { node_faults: faults, ..Default::default() },
            )
        };
        let healthy = run(Vec::new());
        let straggler = run(vec![NodeFault { node: 0, slow_factor: 4.0, ..Default::default() }]);
        assert_eq!(straggler.completions, healthy.completions);
        assert!(
            straggler.busy_core_ms > 1.5 * healthy.busy_core_ms,
            "slow node busy {} vs healthy {}",
            straggler.busy_core_ms,
            healthy.busy_core_ms
        );
        assert!(straggler.response.quantile(0.5) > healthy.response.quantile(0.5));
    }

    #[test]
    fn observed_simulation_emits_sim_time_spans() {
        use faasrail_telemetry::RingSink;
        let trace = trace_of(vec![(0, 7), (5_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let sink = RingSink::with_capacity(16);
        let m = simulate_observed(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
            &sink,
        );
        let events = sink.events();
        assert!(matches!(events.first(), Some(TelemetryEvent::RunStart(_))));
        let Some(TelemetryEvent::RunEnd(end)) = events.last() else {
            panic!("stream must end with run_end");
        };
        assert_eq!(end.issued, m.arrivals);
        assert_eq!(end.completed, m.completions);
        assert_eq!(end.errors, 0);

        let spans: Vec<&InvocationSpan> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Invocation(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len() as u64, m.completions);
        assert!(spans[0].cold_start && !spans[1].cold_start);
        for s in &spans {
            assert_eq!(s.outcome, OutcomeClass::Ok);
            assert!(s.dispatched_us <= s.picked_up_us);
            assert!(s.picked_up_us <= s.completed_us);
            assert!(s.service_ms > 0.0);
        }
        // Cold-start init is visible as pickup→completion overhead beyond
        // the service time; the warm invocation has none (virtual time, so
        // the decomposition is exact up to microsecond truncation).
        assert!(spans[0].overhead_s() > 0.0);
        assert_eq!(spans[1].overhead_s(), 0.0);
        // Idle cluster: no queue wait, dispatch == arrival.
        assert_eq!(spans[1].dispatched_us, 5_000_000);
        assert_eq!(spans[1].queue_wait_s(), 0.0);
    }

    #[test]
    fn observed_simulation_records_crash_kills_as_transport_spans() {
        use faasrail_telemetry::RingSink;
        let trace = trace_of(vec![(0, 7), (600_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let sink = RingSink::with_capacity(16);
        let m = simulate_observed(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions {
                node_faults: vec![NodeFault {
                    node: 0,
                    crash_at_ms: Some(1),
                    ..Default::default()
                }],
                ..Default::default()
            },
            &sink,
        );
        assert_eq!(m.killed, 1);
        let events = sink.events();
        let spans: Vec<&InvocationSpan> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Invocation(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        let killed: Vec<_> =
            spans.iter().filter(|s| s.outcome == OutcomeClass::Transport).collect();
        assert_eq!(killed.len(), 1);
        assert_eq!(killed[0].seq, 0, "the t=0 request died in the crash");
        assert_eq!(killed[0].error.as_deref(), Some("node crash"));
        assert_eq!(killed[0].completed_us, 1_000, "killed at the crash instant");
        let Some(TelemetryEvent::RunEnd(end)) = events.last() else {
            panic!("stream must end with run_end");
        };
        assert_eq!(end.errors, m.killed + m.starved);
    }

    #[test]
    fn out_of_range_fault_node_is_ignored() {
        let trace = trace_of(vec![(0, 7), (1_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions {
                node_faults: vec![NodeFault { node: 99, crash_at_ms: Some(1), slow_factor: 10.0 }],
                ..Default::default()
            },
        );
        assert_eq!(m.completions, 2);
        assert_eq!(m.killed, 0);
        assert_eq!(m.sandboxes_lost, 0);
    }

    #[test]
    fn sim_events_counts_arrivals_and_internal_events() {
        // Two arrivals served warm/cold on an idle node with a TTL policy:
        // 2 arrivals + 2 finishes + 2 expiries = 6 discrete events.
        let trace = trace_of(vec![(0, 7), (5_000, 7)]);
        let mut lb = RoundRobin::default();
        let mut ka = FixedTtl { ttl_ms: 60_000 };
        let m = simulate(
            &trace,
            &pool(),
            &ClusterConfig::single_node(4, 4_096.0),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        assert_eq!(m.sim_events, 6);
        assert!(m.sim_events >= m.arrivals + m.completions);
    }

    #[test]
    fn lazy_stream_source_matches_materialized_trace() {
        // The engine is generic over the schedule source: a lazy
        // ArrivalStream and the trace it materializes to must produce
        // byte-identical metrics (the lab's core equivalence).
        use faasrail_core::{
            materialize, ArrivalStream, ExperimentSpec, IatModel, ScheduleModel, SpecEntry,
        };
        let spec = ExperimentSpec {
            duration_minutes: 3,
            target_max_rps: 10.0,
            iat: IatModel::Poisson,
            entries: (0..6)
                .map(|i| SpecEntry {
                    function_index: i,
                    workload: WorkloadId(i % 10),
                    alternates: vec![],
                    trace_duration_ms: 25.0,
                    per_minute: vec![40, 90, 15],
                })
                .collect(),
        };
        let model = ScheduleModel::from_spec(&spec);
        let stream = ArrivalStream::new(&model, 17);
        let trace = materialize(&stream);
        assert!(trace.len() > 100, "spec must generate real load");

        let run_lazy = || {
            let mut lb = WarmFirst;
            let mut ka = FixedTtl::ten_minutes();
            simulate(
                &stream,
                &pool(),
                &ClusterConfig::default(),
                &mut lb,
                &mut ka,
                &SimOptions::default(),
            )
        };
        let mut lb = WarmFirst;
        let mut ka = FixedTtl::ten_minutes();
        let eager = simulate(
            &trace,
            &pool(),
            &ClusterConfig::default(),
            &mut lb,
            &mut ka,
            &SimOptions::default(),
        );
        assert_eq!(run_lazy(), eager);
        assert_eq!(run_lazy(), eager, "lazy cursor must be re-openable");
    }
}

//! Cluster-level load balancers (paper §2.2, "Cluster-level policies").

use faasrail_workloads::WorkloadId;

/// A node's state, as presented to a load balancer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeView {
    /// Idle warm sandboxes for the request's workload on this node.
    pub warm_for_workload: usize,
    /// Free sandbox memory, MiB.
    pub free_memory_mb: f64,
    /// Invocations currently executing.
    pub running: usize,
    /// Requests queued on the node.
    pub queued: usize,
    /// Cores on the node.
    pub cores: usize,
}

/// A cluster load balancer.
pub trait LoadBalancer: Send {
    /// Pick a node index for the request.
    fn pick_node(&mut self, workload: WorkloadId, nodes: &[NodeView]) -> usize;

    /// Balancer name for reports.
    fn name(&self) -> &'static str;
}

/// Round-robin across nodes.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl LoadBalancer for RoundRobin {
    fn pick_node(&mut self, _workload: WorkloadId, nodes: &[NodeView]) -> usize {
        let n = self.next % nodes.len();
        self.next = self.next.wrapping_add(1);
        n
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Least outstanding work (running + queued).
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl LoadBalancer for LeastLoaded {
    fn pick_node(&mut self, _workload: WorkloadId, nodes: &[NodeView]) -> usize {
        nodes
            .iter()
            .enumerate()
            .min_by_key(|(_, n)| n.running + n.queued)
            .map(|(i, _)| i)
            .expect("non-empty cluster")
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Prefer a node holding a warm sandbox for the workload (locality /
/// fewer cold starts); fall back to least loaded.
#[derive(Debug, Default)]
pub struct WarmFirst;

impl LoadBalancer for WarmFirst {
    fn pick_node(&mut self, _workload: WorkloadId, nodes: &[NodeView]) -> usize {
        let warm = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.warm_for_workload > 0)
            .min_by_key(|(_, n)| n.running + n.queued)
            .map(|(i, _)| i);
        warm.unwrap_or_else(|| LeastLoaded.pick_node(_workload, nodes))
    }

    fn name(&self) -> &'static str {
        "warm-first"
    }
}

/// Static workload→node affinity by hashing the workload id — consistent
/// placement concentrates each function's sandboxes (Palette-style locality
/// hints) at the cost of imbalance.
#[derive(Debug, Default)]
pub struct HashAffinity;

impl LoadBalancer for HashAffinity {
    fn pick_node(&mut self, workload: WorkloadId, nodes: &[NodeView]) -> usize {
        // Fibonacci hashing of the id.
        let h = (workload.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % nodes.len()
    }

    fn name(&self) -> &'static str {
        "hash-affinity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(specs: &[(usize, usize, usize)]) -> Vec<NodeView> {
        specs
            .iter()
            .map(|&(warm, running, queued)| NodeView {
                warm_for_workload: warm,
                free_memory_mb: 1_000.0,
                running,
                queued,
                cores: 8,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::default();
        let ns = nodes(&[(0, 0, 0), (0, 0, 0), (0, 0, 0)]);
        let picks: Vec<usize> = (0..6).map(|_| rr.pick_node(WorkloadId(0), &ns)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_picks_min() {
        let mut lb = LeastLoaded;
        let ns = nodes(&[(0, 5, 2), (0, 1, 0), (0, 3, 3)]);
        assert_eq!(lb.pick_node(WorkloadId(0), &ns), 1);
    }

    #[test]
    fn warm_first_prefers_warm_even_if_busier() {
        let mut lb = WarmFirst;
        let ns = nodes(&[(0, 0, 0), (1, 4, 0)]);
        assert_eq!(lb.pick_node(WorkloadId(0), &ns), 1);
        // No warm anywhere → least loaded.
        let ns = nodes(&[(0, 2, 0), (0, 1, 0)]);
        assert_eq!(lb.pick_node(WorkloadId(0), &ns), 1);
    }

    #[test]
    fn hash_affinity_is_stable_and_spread() {
        let mut lb = HashAffinity;
        let ns = nodes(&[(0, 0, 0); 4]);
        let a = lb.pick_node(WorkloadId(42), &ns);
        assert_eq!(a, lb.pick_node(WorkloadId(42), &ns));
        // Different workloads spread across nodes.
        let mut seen: Vec<usize> = (0..64).map(|w| lb.pick_node(WorkloadId(w), &ns)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() >= 3, "hash affinity should use most nodes: {seen:?}");
    }
}

//! Simulation metrics.

use faasrail_stats::histogram::LogHistogram;
use serde::{Deserialize, Serialize};

/// What one simulation run measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Keep-alive policy name.
    pub policy: String,
    /// Load-balancer name.
    pub balancer: String,
    pub arrivals: u64,
    pub completions: u64,
    pub cold_starts: u64,
    pub warm_starts: u64,
    /// Idle sandboxes evicted under memory pressure.
    pub evictions: u64,
    /// Idle sandboxes expired by TTL.
    pub expirations: u64,
    /// Sandboxes created speculatively by predictive prewarming.
    pub prewarms: u64,
    /// Requests still queued when the simulation drained (cluster too small).
    pub starved: u64,
    /// Requests lost to node crashes: in flight or queued on a node when a
    /// scheduled fault killed it ([`NodeFault`](crate::NodeFault)).
    #[serde(default)]
    pub killed: u64,
    /// Warm (idle) sandboxes destroyed by node crashes.
    #[serde(default)]
    pub sandboxes_lost: u64,
    /// Largest total queued count observed.
    pub max_queue: u64,
    /// Discrete events processed (arrivals, finishes, expiries, prewarms,
    /// crashes) — the denominator for events/sec throughput figures.
    #[serde(default)]
    pub sim_events: u64,
    /// End-to-end response time (arrival → completion), seconds.
    pub response: LogHistogram,
    /// Queue waiting time for requests that had to queue, seconds.
    pub queue_wait: LogHistogram,
    /// Memory held by *idle* sandboxes, integrated over time (MiB·ms) —
    /// the "wasted memory" cost of keep-alive caching.
    pub idle_mb_ms: f64,
    /// Core busy time, summed over invocations (ms).
    pub busy_core_ms: f64,
    /// Busy time per node (ms) — placement-imbalance analysis.
    pub per_node_busy_ms: Vec<f64>,
    /// Virtual duration of the run, ms.
    pub duration_ms: f64,
    /// Cores in the cluster.
    pub total_cores: u64,
}

impl SimMetrics {
    /// Fresh metrics for a run under the given policies.
    pub fn new(policy: &str, balancer: &str) -> Self {
        SimMetrics {
            policy: policy.to_string(),
            balancer: balancer.to_string(),
            arrivals: 0,
            completions: 0,
            cold_starts: 0,
            warm_starts: 0,
            evictions: 0,
            expirations: 0,
            prewarms: 0,
            starved: 0,
            killed: 0,
            sandboxes_lost: 0,
            max_queue: 0,
            sim_events: 0,
            response: LogHistogram::latency_seconds(),
            queue_wait: LogHistogram::new(1e-6, 3_600.0, 1.05),
            idle_mb_ms: 0.0,
            busy_core_ms: 0.0,
            per_node_busy_ms: Vec::new(),
            duration_ms: 0.0,
            total_cores: 0,
        }
    }

    /// Fraction of started invocations that cold-started.
    pub fn cold_start_fraction(&self) -> f64 {
        let started = self.cold_starts + self.warm_starts;
        if started == 0 {
            f64::NAN
        } else {
            self.cold_starts as f64 / started as f64
        }
    }

    /// Mean core utilization over the run.
    pub fn utilization(&self) -> f64 {
        if self.duration_ms <= 0.0 || self.total_cores == 0 {
            return f64::NAN;
        }
        self.busy_core_ms / (self.duration_ms * self.total_cores as f64)
    }

    /// Load-imbalance index: busiest node's busy time over the mean.
    /// 1.0 = perfectly balanced; `NaN` when unmeasurable.
    pub fn imbalance(&self) -> f64 {
        if self.per_node_busy_ms.is_empty() {
            return f64::NAN;
        }
        let max = self.per_node_busy_ms.iter().cloned().fold(f64::MIN, f64::max);
        let mean = self.per_node_busy_ms.iter().sum::<f64>() / self.per_node_busy_ms.len() as f64;
        if mean <= 0.0 {
            f64::NAN
        } else {
            max / mean
        }
    }

    /// Average idle (wasted) warm memory over the run, MiB.
    pub fn mean_idle_memory_mb(&self) -> f64 {
        if self.duration_ms <= 0.0 {
            return f64::NAN;
        }
        self.idle_mb_ms / self.duration_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let mut m = SimMetrics::new("p", "b");
        assert!(m.cold_start_fraction().is_nan());
        m.cold_starts = 25;
        m.warm_starts = 75;
        assert!((m.cold_start_fraction() - 0.25).abs() < 1e-12);
        m.duration_ms = 1_000.0;
        m.total_cores = 10;
        m.busy_core_ms = 2_500.0;
        assert!((m.utilization() - 0.25).abs() < 1e-12);
        m.idle_mb_ms = 512_000.0;
        assert!((m.mean_idle_memory_mb() - 512.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_index() {
        let mut m = SimMetrics::new("p", "b");
        assert!(m.imbalance().is_nan());
        m.per_node_busy_ms = vec![100.0, 100.0, 100.0, 100.0];
        assert!((m.imbalance() - 1.0).abs() < 1e-12);
        m.per_node_busy_ms = vec![400.0, 0.0, 0.0, 0.0];
        assert!((m.imbalance() - 4.0).abs() < 1e-12);
    }
}

//! Deterministic schedule sharding for scale-out load generation.
//!
//! A fleet of replayer processes splits one request trace into disjoint
//! shards by hashing each request's *function* — not the request itself —
//! so every invocation of a Function lands on the same agent and its
//! per-minute arrival series (the quantity FaaSRail preserves) is never
//! smeared across processes. The partition is a pure function of
//! `(function_index, shard count)`: agents need no coordination to agree
//! on it, and a standalone `faasrail replay --shard I/N` produces exactly
//! the shard a fleet agent would.

use faasrail_core::RequestTrace;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`, so
/// consecutive function indices scatter uniformly across shards.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Which of `shards` shards owns `function_index`. Stable across
/// processes, platforms, and releases (the wire protocol depends on it).
///
/// # Panics
/// Panics if `shards == 0`.
pub fn shard_of(function_index: u32, shards: u32) -> u32 {
    assert!(shards > 0, "shard count must be positive");
    (splitmix64(function_index as u64) % shards as u64) as u32
}

/// The unfinished suffix of `trace`: every request at or beyond the
/// contiguous-completion `watermark` (an index into `trace.requests`).
/// Request timestamps are preserved, so replaying the remainder with a
/// resume offset keeps each invocation in its original minute bucket.
pub fn remainder_after(trace: &RequestTrace, watermark: usize) -> RequestTrace {
    RequestTrace {
        duration_minutes: trace.duration_minutes,
        requests: trace.requests.get(watermark..).unwrap_or(&[]).to_vec(),
    }
}

/// Deterministically re-partition a lost shard's remainder across the
/// `survivors` (arbitrary agent identifiers, order-significant). Every
/// request of one Function lands on the same survivor — the same
/// function-keyed invariant as the original sharding — and the returned
/// parts exactly partition `trace`. Survivors with no work are omitted.
///
/// # Panics
/// Panics if `survivors` is empty.
pub fn partition_remainder(trace: &RequestTrace, survivors: &[u32]) -> Vec<(u32, RequestTrace)> {
    assert!(!survivors.is_empty(), "cannot partition a remainder across zero survivors");
    let n = survivors.len() as u32;
    let mut parts: Vec<(u32, RequestTrace)> = survivors
        .iter()
        .map(|&s| {
            (s, RequestTrace { duration_minutes: trace.duration_minutes, requests: Vec::new() })
        })
        .collect();
    for r in &trace.requests {
        let slot = shard_of(r.function_index, n) as usize;
        parts[slot].1.requests.push(*r);
    }
    parts.retain(|(_, t)| !t.requests.is_empty());
    parts
}

/// One shard of a sharded replay: `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    pub index: u32,
    pub count: u32,
}

impl ShardSpec {
    /// # Panics
    /// Panics unless `index < count`.
    pub fn new(index: u32, count: u32) -> Self {
        assert!(index < count, "shard index {index} out of range for {count} shards");
        ShardSpec { index, count }
    }

    /// Parse an `I/N` shard spec (e.g. `0/4`), as taken by
    /// `faasrail replay --shard`.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let err = || format!("invalid shard spec {s:?} (expected I/N with 0 <= I < N)");
        let (i, n) = s.split_once('/').ok_or_else(err)?;
        let index: u32 = i.trim().parse().map_err(|_| err())?;
        let count: u32 = n.trim().parse().map_err(|_| err())?;
        if count == 0 || index >= count {
            return Err(err());
        }
        Ok(ShardSpec { index, count })
    }

    /// The subset of `trace` this shard replays: every request whose
    /// Function hashes to `index`, in original schedule order. The `count`
    /// shards of a trace exactly partition it — no request is lost or
    /// duplicated — and all requests of one Function share a shard.
    pub fn filter(&self, trace: &RequestTrace) -> RequestTrace {
        RequestTrace {
            duration_minutes: trace.duration_minutes,
            requests: trace
                .requests
                .iter()
                .filter(|r| shard_of(r.function_index, self.count) == self.index)
                .copied()
                .collect(),
        }
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_core::Request;
    use faasrail_workloads::WorkloadId;

    fn trace(functions: u32, per_function: u64) -> RequestTrace {
        let mut requests = Vec::new();
        for f in 0..functions {
            for i in 0..per_function {
                requests.push(Request {
                    at_ms: i * 100 + f as u64,
                    workload: WorkloadId(f % 10),
                    function_index: f,
                });
            }
        }
        requests.sort_by_key(|r| (r.at_ms, r.function_index));
        RequestTrace { duration_minutes: 1, requests }
    }

    #[test]
    fn shards_exactly_partition_the_schedule() {
        // No invocation lost or duplicated, for several shard counts.
        let full = trace(97, 7);
        for count in [1u32, 2, 3, 5, 8] {
            let mut union: Vec<_> =
                (0..count).flat_map(|i| ShardSpec::new(i, count).filter(&full).requests).collect();
            assert_eq!(union.len(), full.requests.len(), "count={count}");
            union.sort_by_key(|r| (r.at_ms, r.function_index));
            assert_eq!(union, full.requests, "count={count}");
        }
    }

    #[test]
    fn shards_are_disjoint_by_function() {
        let full = trace(50, 3);
        for count in [2u32, 4] {
            for f in 0..50 {
                let owners: Vec<u32> = (0..count)
                    .filter(|&i| {
                        ShardSpec::new(i, count)
                            .filter(&full)
                            .requests
                            .iter()
                            .any(|r| r.function_index == f)
                    })
                    .collect();
                assert_eq!(owners.len(), 1, "function {f} must live on exactly one shard");
                assert_eq!(owners[0], shard_of(f, count));
            }
        }
    }

    #[test]
    fn partition_is_deterministic_and_order_preserving() {
        let full = trace(30, 5);
        let a = ShardSpec::new(1, 3).filter(&full);
        let b = ShardSpec::new(1, 3).filter(&full);
        assert_eq!(a, b);
        assert!(a.requests.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert_eq!(a.duration_minutes, full.duration_minutes);
    }

    #[test]
    fn single_shard_is_identity() {
        let full = trace(20, 4);
        assert_eq!(ShardSpec::new(0, 1).filter(&full), full);
    }

    #[test]
    fn shard_hash_spreads_functions() {
        // With many functions, no shard may end up empty (the hash must
        // actually scatter, not collapse).
        for count in [2u32, 4, 8] {
            for shard in 0..count {
                let hits = (0..1_000u32).filter(|&f| shard_of(f, count) == shard).count();
                let expect = 1_000 / count as usize;
                assert!(
                    hits > expect / 2 && hits < expect * 2,
                    "shard {shard}/{count} owns {hits} of 1000 functions"
                );
            }
        }
    }

    #[test]
    fn parse_accepts_valid_and_rejects_invalid() {
        assert_eq!(ShardSpec::parse("0/4").unwrap(), ShardSpec::new(0, 4));
        assert_eq!(ShardSpec::parse("3/4").unwrap(), ShardSpec::new(3, 4));
        assert_eq!(ShardSpec::parse("2/3").unwrap().to_string(), "2/3");
        for bad in ["", "4", "4/4", "5/4", "-1/4", "1/0", "a/b", "1/2/3"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_rejected() {
        ShardSpec::new(4, 4);
    }

    #[test]
    fn remainder_after_is_the_unfinished_suffix() {
        let full = trace(10, 4);
        let rem = remainder_after(&full, 15);
        assert_eq!(rem.requests, full.requests[15..].to_vec());
        assert_eq!(rem.duration_minutes, full.duration_minutes);
        assert_eq!(remainder_after(&full, 0), full, "watermark 0 keeps everything");
        assert!(remainder_after(&full, full.requests.len()).requests.is_empty());
        assert!(remainder_after(&full, usize::MAX).requests.is_empty(), "past-end is empty");
    }

    #[test]
    fn partition_remainder_partitions_exactly_and_keeps_function_affinity() {
        let full = trace(40, 5);
        let rem = remainder_after(&full, 37);
        let survivors = [7u32, 2, 9];
        let parts = partition_remainder(&rem, &survivors);
        // Exact partition: union equals the remainder, order preserved per part.
        let mut union: Vec<_> = parts.iter().flat_map(|(_, t)| t.requests.clone()).collect();
        union.sort_by_key(|r| (r.at_ms, r.function_index));
        let mut want = rem.requests.clone();
        want.sort_by_key(|r| (r.at_ms, r.function_index));
        assert_eq!(union, want);
        for (owner, t) in &parts {
            assert!(survivors.contains(owner));
            assert!(!t.requests.is_empty(), "empty parts must be omitted");
            assert!(t.requests.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
            for r in &t.requests {
                assert_eq!(survivors[shard_of(r.function_index, 3) as usize], *owner);
            }
        }
        // Deterministic: same inputs, same plan.
        assert_eq!(parts, partition_remainder(&rem, &survivors));
    }

    #[test]
    #[should_panic]
    fn partition_remainder_rejects_zero_survivors() {
        partition_remainder(&trace(3, 2), &[]);
    }
}

//! Synthetic request traces for benchmarking.
//!
//! The shrink ray emits traces derived from real workloads; the benchmark
//! harness instead needs *controlled* load — a known constant rate held
//! for a known duration — so that a measured p99 is attributable to the
//! system under test rather than to trace burstiness. Two arrival
//! processes are offered:
//!
//! * **uniform** — equidistant arrivals (`i / rps` seconds). Zero
//!   burstiness; isolates the service path.
//! * **Poisson** — exponential inter-arrival times at the same mean rate,
//!   the classic open-system arrival model. Bursty at every timescale;
//!   stresses queueing the way production traffic does.
//!
//! Both are deterministic in `(rps, duration, seed)`: the Poisson stream
//! uses an inline splitmix64 generator rather than an external RNG so the
//! same spec always produces the byte-identical trace, regardless of
//! toolchain or `rand` version.

use faasrail_core::{Request, RequestTrace};
use faasrail_workloads::WorkloadId;

/// How synthetic arrivals are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Equidistant arrivals: request `i` at `i / rps` seconds.
    Uniform,
    /// Exponential inter-arrival times with mean `1 / rps` seconds,
    /// seeded deterministically.
    Poisson,
}

/// Build a constant-rate trace: `rps` requests per second held for
/// `duration_s` seconds, all invoking `workload`.
///
/// The trace length is `ceil(rps * duration_s)` requests; `at_ms` stamps
/// are clamped into the duration so `duration_minutes` stays consistent
/// even for a bursty Poisson tail.
pub fn fixed_rate_trace(
    rps: f64,
    duration_s: f64,
    workload: WorkloadId,
    process: ArrivalProcess,
    seed: u64,
) -> RequestTrace {
    assert!(rps > 0.0 && rps.is_finite(), "rps must be positive");
    assert!(duration_s > 0.0 && duration_s.is_finite(), "duration must be positive");
    let n = (rps * duration_s).ceil() as u64;
    let mut requests = Vec::with_capacity(n as usize);
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut t_s = 0.0f64;
    for i in 0..n {
        let at_s = match process {
            ArrivalProcess::Uniform => i as f64 / rps,
            ArrivalProcess::Poisson => {
                // Inverse-CDF exponential draw; u in (0, 1].
                let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                t_s += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / rps;
                t_s
            }
        };
        let at_ms = (at_s * 1e3).min(duration_s * 1e3) as u64;
        requests.push(Request { at_ms, workload, function_index: i as u32 });
    }
    // A Poisson draw can land slightly out of order after clamping only in
    // degenerate cases; arrival order is an invariant of RequestTrace.
    requests.sort_by_key(|r| r.at_ms);
    RequestTrace { duration_minutes: (duration_s / 60.0).ceil().max(1.0) as usize, requests }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_trace_is_equidistant_and_sized() {
        let t = fixed_rate_trace(100.0, 2.0, WorkloadId(7), ArrivalProcess::Uniform, 1);
        assert_eq!(t.requests.len(), 200);
        assert_eq!(t.duration_minutes, 1);
        assert_eq!(t.requests[0].at_ms, 0);
        assert_eq!(t.requests[100].at_ms, 1000);
        for w in t.requests.windows(2) {
            assert_eq!(w[1].at_ms - w[0].at_ms, 10);
        }
    }

    #[test]
    fn poisson_trace_is_deterministic_and_mean_rate_holds() {
        let a = fixed_rate_trace(500.0, 4.0, WorkloadId(3), ArrivalProcess::Poisson, 99);
        let b = fixed_rate_trace(500.0, 4.0, WorkloadId(3), ArrivalProcess::Poisson, 99);
        assert_eq!(a, b, "same spec must produce the identical trace");
        let c = fixed_rate_trace(500.0, 4.0, WorkloadId(3), ArrivalProcess::Poisson, 100);
        assert_ne!(a, c, "different seed must change arrival times");
        assert_eq!(a.requests.len(), 2000);
        // Mean inter-arrival ≈ 2ms; the 2000-draw sample mean should land
        // well within ±20%.
        let span_ms = a.requests.last().unwrap().at_ms as f64;
        let mean_gap = span_ms / 1999.0;
        assert!((1.6..=2.4).contains(&mean_gap), "mean gap {mean_gap} ms");
    }

    #[test]
    fn arrivals_are_sorted_and_clamped() {
        let t = fixed_rate_trace(50.0, 1.0, WorkloadId(0), ArrivalProcess::Poisson, 7);
        assert!(t.requests.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert!(t.requests.iter().all(|r| r.at_ms <= 1000));
    }
}

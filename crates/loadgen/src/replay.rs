//! The open-loop replayer.
//!
//! A pacer thread walks the time-ordered request trace and dispatches each
//! request at its scheduled instant (hybrid sleep/spin for sub-millisecond
//! accuracy); a pool of worker threads serves the dispatched requests
//! against the [`Backend`]. The generator is *open-loop*: a slow backend
//! never delays the schedule — requests queue, and the queueing shows up in
//! response times, exactly like load on a saturated FaaS gateway.

use crate::backend::{Backend, InvocationRequest};
use crate::metrics::RunMetrics;
use crossbeam::channel;
use faasrail_core::RequestTrace;
use faasrail_workloads::WorkloadPool;
use std::time::{Duration, Instant};

/// How dispatch instants are derived from the trace timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Wall-clock replay; trace time divided by `compression`
    /// (`compression: 2.0` replays a 2-hour trace in 1 hour).
    RealTime { compression: f64 },
    /// Dispatch as fast as workers drain — for tests and simulators with
    /// their own clock.
    Unpaced,
    /// Closed-loop comparator: like [`Pacing::Unpaced`], but latency is
    /// measured from the moment a worker *picks the request up*, not from
    /// its scheduled dispatch — the classic coordinated-omission mistake.
    /// Provided so experiments can quantify how much an overloaded
    /// backend's queueing a closed-loop harness silently hides.
    ClosedLoop,
}

/// Replayer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    pub pacing: Pacing,
    /// Worker threads serving invocations.
    pub workers: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { pacing: Pacing::RealTime { compression: 1.0 }, workers: 8 }
    }
}

struct Job {
    req: InvocationRequest,
    /// The instant the request was dispatched (for response-time
    /// accounting under real-time pacing).
    dispatched: Instant,
}

/// Hybrid wait: coarse sleep until ~1 ms before the target, then spin.
fn wait_until(target: Instant) {
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        let remaining = target - now;
        if remaining > Duration::from_millis(2) {
            std::thread::sleep(remaining - Duration::from_millis(1));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Replay a request trace against a backend; returns merged metrics.
///
/// ```
/// use faasrail_core::{Request, RequestTrace};
/// use faasrail_loadgen::{replay, NoopBackend, Pacing, ReplayConfig};
/// use faasrail_workloads::{CostModel, WorkloadId, WorkloadPool};
/// let pool = WorkloadPool::vanilla(&CostModel::default_calibration());
/// let trace = RequestTrace {
///     duration_minutes: 1,
///     requests: (0..100)
///         .map(|i| Request { at_ms: i, workload: WorkloadId(7), function_index: 0 })
///         .collect(),
/// };
/// let cfg = ReplayConfig { pacing: Pacing::Unpaced, workers: 2 };
/// let metrics = replay(&trace, &pool, &NoopBackend, &cfg);
/// assert_eq!(metrics.completed, 100);
/// ```
///
/// # Panics
/// Panics on a zero-worker configuration or a non-positive compression.
pub fn replay<B: Backend>(
    trace: &RequestTrace,
    pool: &WorkloadPool,
    backend: &B,
    cfg: &ReplayConfig,
) -> RunMetrics {
    assert!(cfg.workers > 0, "need at least one worker");
    if let Pacing::RealTime { compression } = cfg.pacing {
        assert!(compression > 0.0, "compression must be positive");
    }

    let (tx, rx) = channel::unbounded::<Job>();
    let mut merged = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let rx = rx.clone();
            handles.push(scope.spawn(move || {
                let mut local = RunMetrics::new();
                let from_pickup = matches!(cfg.pacing, Pacing::ClosedLoop);
                while let Ok(job) = rx.recv() {
                    let picked_up = Instant::now();
                    let result = backend.invoke(&job.req);
                    let response_s = if from_pickup {
                        picked_up.elapsed().as_secs_f64()
                    } else {
                        job.dispatched.elapsed().as_secs_f64()
                    };
                    local.record_outcome(&result);
                    if result.cold_start {
                        local.cold_starts += 1;
                    }
                    local.response.record(response_s.max(result.service_ms / 1_000.0));
                    local.service.record(result.service_ms / 1_000.0);
                    let kind = job.req.input.kind();
                    *local.per_kind.entry(kind).or_insert(0) += 1;
                }
                local
            }));
        }
        drop(rx);

        // Pacer (this thread).
        let mut pacer = RunMetrics::new();
        let start = Instant::now();
        for r in &trace.requests {
            let workload = pool.get(r.workload).expect("request workload in pool");
            if let Pacing::RealTime { compression } = cfg.pacing {
                let target =
                    start + Duration::from_secs_f64(r.at_ms as f64 / 1_000.0 / compression);
                wait_until(target);
                pacer
                    .lateness
                    .record((Instant::now().saturating_duration_since(target)).as_secs_f64());
            }
            pacer.record_issued(r.at_ms);
            let job = Job {
                req: InvocationRequest {
                    workload: r.workload,
                    input: workload.input,
                    function_index: r.function_index,
                    scheduled_at_ms: r.at_ms,
                },
                dispatched: Instant::now(),
            };
            if tx.send(job).is_err() {
                break; // all workers died; stop issuing
            }
        }
        drop(tx);

        for h in handles {
            pacer.merge(&h.join().expect("worker panicked"));
        }
        pacer
    });

    // `issued` was counted by the pacer alone; worker merges added zeros.
    merged.issued = trace.requests.len() as u64;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{InvocationResult, NoopBackend};
    use faasrail_core::Request;
    use faasrail_workloads::{CostModel, WorkloadId, WorkloadPool};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tiny_trace(n: u64, spacing_ms: u64) -> RequestTrace {
        RequestTrace {
            duration_minutes: 1,
            requests: (0..n)
                .map(|i| Request {
                    at_ms: i * spacing_ms,
                    workload: WorkloadId(7), // vanilla pyaes
                    function_index: 0,
                })
                .collect(),
        }
    }

    fn vanilla_pool() -> WorkloadPool {
        WorkloadPool::vanilla(&CostModel::default_calibration())
    }

    #[test]
    fn unpaced_replay_serves_everything() {
        let trace = tiny_trace(200, 1);
        let pool = vanilla_pool();
        let m = replay(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::Unpaced, workers: 4 },
        );
        assert_eq!(m.issued, 200);
        assert_eq!(m.completed, 200);
        assert_eq!(m.errors, 0);
        assert_eq!(m.per_kind.values().sum::<u64>(), 200);
    }

    #[test]
    // TRACKING: environment-dependent. Asserts sub-2ms median dispatch
    // lateness, which holds on quiet hardware but flakes on loaded/virtualized
    // CI runners where the scheduler can't honor millisecond sleeps. Pacing
    // accuracy at CI tolerances is still covered by
    // `realtime_pacing_meets_schedule_under_load` (tests/loadgen_integration).
    // Run explicitly with `cargo test -- --ignored` on quiet hardware.
    #[ignore = "timing-sensitive: asserts millisecond-scale pacing accuracy"]
    fn realtime_pacing_is_accurate() {
        // 50 requests spaced 4 ms apart: total 200 ms; lateness should stay
        // well under a millisecond at p50.
        let trace = tiny_trace(50, 4);
        let pool = vanilla_pool();
        let start = Instant::now();
        let m = replay(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::RealTime { compression: 1.0 }, workers: 2 },
        );
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(190), "finished too early: {elapsed:?}");
        assert_eq!(m.issued, 50);
        let p50_lateness = m.lateness.quantile(0.5);
        assert!(p50_lateness < 0.002, "median lateness {p50_lateness}s");
    }

    #[test]
    fn compression_speeds_up_replay() {
        let trace = tiny_trace(50, 10); // 500 ms of trace time
        let pool = vanilla_pool();
        let start = Instant::now();
        replay(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::RealTime { compression: 10.0 }, workers: 2 },
        );
        let elapsed = start.elapsed();
        assert!(elapsed < Duration::from_millis(300), "compression ignored: {elapsed:?}");
    }

    #[test]
    fn errors_and_cold_starts_counted() {
        struct Flaky(AtomicU64);
        impl Backend for Flaky {
            fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
                let n = self.0.fetch_add(1, Ordering::Relaxed);
                if n.is_multiple_of(2) {
                    InvocationResult::success(0.1, n.is_multiple_of(4))
                } else {
                    InvocationResult::app_error(0.1, "odd request rejected")
                }
            }
        }
        let trace = tiny_trace(100, 0);
        let pool = vanilla_pool();
        let m = replay(
            &trace,
            &pool,
            &Flaky(AtomicU64::new(0)),
            &ReplayConfig { pacing: Pacing::Unpaced, workers: 3 },
        );
        assert_eq!(m.completed + m.errors, 100);
        assert_eq!(m.completed, 50);
        assert_eq!(m.cold_starts, 25);
        // Failures are classified: all app errors here, no transport path.
        assert_eq!(m.app_errors, 50);
        assert_eq!(m.timeouts, 0);
        assert_eq!(m.transport_errors, 0);
    }

    #[test]
    fn open_loop_does_not_stall_on_slow_backend() {
        // A backend slower than the request rate must not delay dispatch:
        // with 1 worker and 20 ms service on a 1 ms schedule, issuance still
        // finishes on schedule (~50 ms), while completions trail behind.
        struct Slow;
        impl Backend for Slow {
            fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
                std::thread::sleep(Duration::from_millis(5));
                InvocationResult::success(5.0, false)
            }
        }
        let trace = tiny_trace(40, 1);
        let pool = vanilla_pool();
        let m = replay(
            &trace,
            &pool,
            &Slow,
            &ReplayConfig { pacing: Pacing::RealTime { compression: 1.0 }, workers: 1 },
        );
        // All served eventually.
        assert_eq!(m.completed, 40);
        // Queueing must be visible in response times: the last requests
        // waited roughly 40×5 ms behind one worker.
        let p99 = m.response.quantile(0.99);
        assert!(p99 > 0.05, "p99 response {p99}s shows no queueing");
    }

    #[test]
    fn issued_per_minute_matches_schedule() {
        // Requests scheduled across 3 experiment minutes must land in the
        // right buckets of the achieved-rate series.
        let requests = vec![
            Request { at_ms: 0, workload: WorkloadId(7), function_index: 0 },
            Request { at_ms: 59_999, workload: WorkloadId(7), function_index: 0 },
            Request { at_ms: 60_000, workload: WorkloadId(7), function_index: 0 },
            Request { at_ms: 125_000, workload: WorkloadId(7), function_index: 0 },
        ];
        let trace = RequestTrace { duration_minutes: 3, requests };
        let pool = vanilla_pool();
        let m = replay(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::Unpaced, workers: 2 },
        );
        assert_eq!(m.issued_per_minute, vec![2, 1, 1]);
        assert_eq!(m.issued_per_minute.iter().sum::<u64>(), m.issued);
    }

    #[test]
    fn closed_loop_hides_queueing_open_loop_exposes() {
        struct Slow;
        impl Backend for Slow {
            fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
                std::thread::sleep(Duration::from_millis(4));
                InvocationResult::success(4.0, false)
            }
        }
        let trace = tiny_trace(60, 0); // all due at t=0: 1 worker is 240 ms behind
        let pool = vanilla_pool();
        let open =
            replay(&trace, &pool, &Slow, &ReplayConfig { pacing: Pacing::Unpaced, workers: 1 });
        let closed =
            replay(&trace, &pool, &Slow, &ReplayConfig { pacing: Pacing::ClosedLoop, workers: 1 });
        // Open loop counts the queue wait; closed loop reports ~service time
        // — the coordinated-omission gap.
        let open_p99 = open.response.quantile(0.99);
        let closed_p99 = closed.response.quantile(0.99);
        assert!(
            open_p99 > closed_p99 * 5.0,
            "open p99 {open_p99}s should dwarf closed p99 {closed_p99}s"
        );
        assert!(closed_p99 < 0.02, "closed loop should report near-service time");
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        let trace = tiny_trace(1, 1);
        let pool = vanilla_pool();
        replay(&trace, &pool, &NoopBackend, &ReplayConfig { pacing: Pacing::Unpaced, workers: 0 });
    }
}

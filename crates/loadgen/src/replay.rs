//! The open-loop replayer.
//!
//! A pacer thread walks the time-ordered request trace and dispatches each
//! request at its scheduled instant (hybrid sleep/spin for sub-millisecond
//! accuracy); a pool of worker threads serves the dispatched requests
//! against the [`Backend`]. The generator is *open-loop*: a slow backend
//! never delays the schedule — requests queue, and the queueing shows up in
//! response times, exactly like load on a saturated FaaS gateway.
//!
//! Two hardening properties matter for replaying against research FaaS
//! stacks that crash and stall mid-experiment:
//!
//! * **panic isolation** — a backend (or workload kernel) that panics is
//!   caught per-invocation and recorded as an application error; the worker
//!   survives, the channel keeps draining, and the run still reports
//!   complete metrics instead of deadlocking or aborting;
//! * **graceful drain** — [`replay_until`] takes a stop flag: once set, the
//!   pacer stops dispatching, the workers drain everything already
//!   dispatched, and the partial [`RunMetrics`] (marked
//!   [`aborted`](RunMetrics::aborted)) are still merged and returned, so an
//!   interrupted experiment reports what actually happened.

use crate::backend::{Backend, InvocationRequest, InvocationResult};
use crate::metrics::RunMetrics;
use crossbeam::channel;
use faasrail_core::RequestTrace;
use faasrail_telemetry::{
    EventSink, InvocationSpan, NullSink, Recorder, RunInfo, RunSummary, TelemetryEvent,
};
use faasrail_workloads::WorkloadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// How dispatch instants are derived from the trace timestamps.
/// Serializable so a fleet coordinator can ship the pacing mode to its
/// agents inside a shard assignment.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Pacing {
    /// Wall-clock replay; trace time divided by `compression`
    /// (`compression: 2.0` replays a 2-hour trace in 1 hour).
    RealTime { compression: f64 },
    /// Dispatch as fast as workers drain — for tests and simulators with
    /// their own clock.
    Unpaced,
    /// Closed-loop comparator: like [`Pacing::Unpaced`], but latency is
    /// measured from the moment a worker *picks the request up*, not from
    /// its scheduled dispatch — the classic coordinated-omission mistake.
    /// Provided so experiments can quantify how much an overloaded
    /// backend's queueing a closed-loop harness silently hides.
    ClosedLoop,
}

/// Replayer configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplayConfig {
    pub pacing: Pacing,
    /// Worker threads serving invocations.
    pub workers: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { pacing: Pacing::RealTime { compression: 1.0 }, workers: 8 }
    }
}

/// Observability hooks threaded through a replay. The default is inert
/// (null sink, no recorder), so un-instrumented replays pay nothing beyond
/// a couple of branch tests per invocation.
pub struct ReplayInstruments<'a> {
    /// Destination for the run's event stream: one `run_start`, one
    /// `invocation` span per dispatched request, one `run_end`.
    pub sink: &'a dyn EventSink,
    /// Optional live-metrics recorder. Worker `i` records into shard `i`
    /// and the pacer into shard `workers`, so a recorder with
    /// `workers + 1` shards is contention-free (any shard count still
    /// works — indices wrap).
    pub recorder: Option<&'a Recorder>,
    /// Optional live pacing-lag gauge, updated by the pacer on every
    /// real-time dispatch. Lets a supervisor (e.g. a fleet agent's
    /// progress pump) report how far behind schedule the replay runs
    /// without touching the lateness histogram mid-run.
    pub pace: Option<&'a PaceGauge>,
}

static NULL_SINK: NullSink = NullSink;

impl Default for ReplayInstruments<'_> {
    fn default() -> Self {
        ReplayInstruments { sink: &NULL_SINK, recorder: None, pace: None }
    }
}

/// Lock-free view of the pacer's current schedule lag. The pacer stores
/// each dispatch's lateness; readers poll the most recent and the maximum
/// seen. Microsecond granularity, saturating at `u64::MAX`.
#[derive(Debug, Default)]
pub struct PaceGauge {
    lag_us: std::sync::atomic::AtomicU64,
    max_lag_us: std::sync::atomic::AtomicU64,
}

impl PaceGauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one dispatch's lateness (seconds behind schedule).
    pub fn record_secs(&self, lateness_s: f64) {
        let us = (lateness_s.max(0.0) * 1e6).min(u64::MAX as f64) as u64;
        self.lag_us.store(us, Ordering::Relaxed);
        self.max_lag_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Most recent dispatch lateness, milliseconds.
    pub fn lag_ms(&self) -> u64 {
        self.lag_us.load(Ordering::Relaxed) / 1_000
    }

    /// Worst dispatch lateness seen this run, milliseconds.
    pub fn max_lag_ms(&self) -> u64 {
        self.max_lag_us.load(Ordering::Relaxed) / 1_000
    }
}

/// Where in trace time a replay resumes. A remainder trace handed to a
/// fleet survivor keeps its original `at_ms` stamps; `elapsed_ms` says how
/// much trace time has already passed fleet-wide, so requests scheduled at
/// or before it fire immediately — *recorded as late by exactly their
/// deficit* (coordinated-omission-correct: catch-up work is never dropped
/// and its lateness is never hidden) — while later requests fire at their
/// original schedule positions.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResumeSpec {
    /// Trace time already elapsed when this replay starts, milliseconds.
    pub elapsed_ms: u64,
}

struct Job {
    req: InvocationRequest,
    /// The instant the request was dispatched (for response-time
    /// accounting under real-time pacing).
    dispatched: Instant,
    /// Dispatch sequence number, for span identity.
    seq: u64,
    /// Scheduled fire instant, µs from run start (= actual dispatch when
    /// not pacing in real time).
    target_us: u64,
}

/// Microseconds from `t0` to `t`, clamped at zero.
fn us_since(t0: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(t0).as_micros() as u64
}

/// Hybrid wait: coarse sleep until ~1 ms before the target, then spin.
/// Sleeps are chunked so a raised stop flag is noticed within ~20 ms even
/// mid-gap; returns `false` if the wait was interrupted by the flag.
fn wait_until(target: Instant, stop: &AtomicBool) -> bool {
    loop {
        if stop.load(Ordering::Relaxed) {
            return false;
        }
        let now = Instant::now();
        if now >= target {
            return true;
        }
        let remaining = target - now;
        if remaining > Duration::from_millis(2) {
            std::thread::sleep(
                (remaining - Duration::from_millis(1)).min(Duration::from_millis(20)),
            );
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Render a panic payload for the invocation's error message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Serve one invocation with panic isolation: a panicking backend (e.g. a
/// workload kernel hitting a bug mid-replay) is recorded as an application
/// error instead of killing the worker thread.
fn invoke_isolated<B: Backend>(backend: &B, req: &InvocationRequest) -> InvocationResult {
    match catch_unwind(AssertUnwindSafe(|| backend.invoke(req))) {
        Ok(result) => result,
        Err(payload) => InvocationResult::app_error(
            0.0,
            format!("backend panicked: {}", panic_message(payload)),
        ),
    }
}

/// Replay a request trace against a backend; returns merged metrics.
///
/// ```
/// use faasrail_core::{Request, RequestTrace};
/// use faasrail_loadgen::{replay, NoopBackend, Pacing, ReplayConfig};
/// use faasrail_workloads::{CostModel, WorkloadId, WorkloadPool};
/// let pool = WorkloadPool::vanilla(&CostModel::default_calibration());
/// let trace = RequestTrace {
///     duration_minutes: 1,
///     requests: (0..100)
///         .map(|i| Request { at_ms: i, workload: WorkloadId(7), function_index: 0 })
///         .collect(),
/// };
/// let cfg = ReplayConfig { pacing: Pacing::Unpaced, workers: 2 };
/// let metrics = replay(&trace, &pool, &NoopBackend, &cfg);
/// assert_eq!(metrics.completed, 100);
/// ```
///
/// # Panics
/// Panics on a zero-worker configuration or a non-positive compression.
pub fn replay<B: Backend>(
    trace: &RequestTrace,
    pool: &WorkloadPool,
    backend: &B,
    cfg: &ReplayConfig,
) -> RunMetrics {
    replay_until(trace, pool, backend, cfg, &AtomicBool::new(false))
}

/// [`replay`], with a graceful-stop flag.
///
/// When `stop` becomes `true` (set from any thread — a signal handler, a
/// watchdog, an experiment controller), the pacer stops dispatching new
/// requests, the workers drain everything already in flight, and the
/// metrics for the dispatched prefix are merged and returned with
/// [`RunMetrics::aborted`] set. Nothing already dispatched is lost:
/// `completed + errors == issued` holds for the partial run too.
pub fn replay_until<B: Backend>(
    trace: &RequestTrace,
    pool: &WorkloadPool,
    backend: &B,
    cfg: &ReplayConfig,
    stop: &AtomicBool,
) -> RunMetrics {
    replay_observed(trace, pool, backend, cfg, stop, &ReplayInstruments::default())
}

/// [`replay_until`], with observability: every dispatched request is
/// emitted as an [`InvocationSpan`] (bracketed by `run_start`/`run_end`
/// events) through `inst.sink`, and, when present, `inst.recorder` is
/// updated on the hot path for live windowed metrics. The returned
/// [`RunMetrics`] are identical to an un-instrumented run's.
pub fn replay_observed<B: Backend>(
    trace: &RequestTrace,
    pool: &WorkloadPool,
    backend: &B,
    cfg: &ReplayConfig,
    stop: &AtomicBool,
    inst: &ReplayInstruments<'_>,
) -> RunMetrics {
    replay_resumed(trace, pool, backend, cfg, stop, inst, &ResumeSpec::default())
}

/// [`replay_observed`], resuming mid-schedule. With `resume.elapsed_ms ==
/// 0` this is exactly `replay_observed`. With a positive elapsed time,
/// requests already due dispatch immediately and record their true
/// lateness (their schedule deficit divided by the compression factor),
/// and requests still in the future fire at original schedule positions —
/// the pacing a fleet survivor needs to take over a dead agent's
/// remaining minutes without compressing or dropping the backlog.
pub fn replay_resumed<B: Backend>(
    trace: &RequestTrace,
    pool: &WorkloadPool,
    backend: &B,
    cfg: &ReplayConfig,
    stop: &AtomicBool,
    inst: &ReplayInstruments<'_>,
    resume: &ResumeSpec,
) -> RunMetrics {
    assert!(cfg.workers > 0, "need at least one worker");
    if let Pacing::RealTime { compression } = cfg.pacing {
        assert!(compression > 0.0, "compression must be positive");
    }

    let (pacing_name, compression) = match cfg.pacing {
        Pacing::RealTime { compression } => ("realtime", compression),
        Pacing::Unpaced => ("unpaced", 1.0),
        Pacing::ClosedLoop => ("closed-loop", 1.0),
    };
    inst.sink.emit(&TelemetryEvent::RunStart(RunInfo {
        requests: trace.requests.len() as u64,
        duration_minutes: trace.duration_minutes as u64,
        workers: cfg.workers as u64,
        pacing: pacing_name.to_string(),
        compression,
    }));

    // A fresh run id per replay keeps trace ids collision-resistant across
    // concurrent replayers hitting one gateway, without any coordination.
    let run_id = {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        nanos ^ ((std::process::id() as u64) << 32)
    };

    let start = Instant::now();
    let (tx, rx) = channel::unbounded::<Job>();
    let metrics = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.workers);
        for worker in 0..cfg.workers {
            let rx = rx.clone();
            handles.push(scope.spawn(move || {
                let mut local = RunMetrics::new();
                let from_pickup = matches!(cfg.pacing, Pacing::ClosedLoop);
                while let Ok(job) = rx.recv() {
                    let picked_up = Instant::now();
                    let result = invoke_isolated(backend, &job.req);
                    let completed = Instant::now();
                    let response_s = if from_pickup {
                        completed.duration_since(picked_up).as_secs_f64()
                    } else {
                        completed.duration_since(job.dispatched).as_secs_f64()
                    };
                    let response_recorded = response_s.max(result.service_ms / 1_000.0);
                    local.record_outcome(&result);
                    if result.cold_start {
                        local.cold_starts += 1;
                    }
                    local.response.record(response_recorded);
                    local.service.record(result.service_ms / 1_000.0);
                    let kind = job.req.input.kind();
                    *local.per_kind.entry(kind).or_insert(0) += 1;
                    if let Some(recorder) = inst.recorder {
                        recorder.record_outcome(
                            worker,
                            result.outcome(),
                            response_recorded,
                            result.cold_start,
                        );
                    }
                    inst.sink.emit(&TelemetryEvent::Invocation(InvocationSpan {
                        trace_id: job.req.trace_id,
                        seq: job.seq,
                        workload: job.req.workload.0 as u64,
                        function_index: job.req.function_index,
                        scheduled_ms: job.req.scheduled_at_ms,
                        target_us: job.target_us,
                        dispatched_us: us_since(start, job.dispatched),
                        picked_up_us: us_since(start, picked_up),
                        completed_us: us_since(start, completed),
                        service_ms: result.service_ms,
                        outcome: result.outcome(),
                        cold_start: result.cold_start,
                        error: result.error,
                    }));
                }
                local
            }));
        }
        drop(rx);

        // Pacer (this thread). `issued` counts only what was actually
        // dispatched, so a stopped run reports its true prefix.
        let pacer_shard = cfg.workers;
        let mut pacer = RunMetrics::new();
        for (seq, r) in trace.requests.iter().enumerate() {
            let seq = seq as u64;
            if stop.load(Ordering::Relaxed) {
                pacer.aborted = true;
                break;
            }
            let workload = pool.get(r.workload).expect("request workload in pool");
            let mut target_us = None;
            if let Pacing::RealTime { compression } = cfg.pacing {
                // Offset from the replay's own start on the *resumed*
                // timeline; non-positive means the request was already due
                // when this replay began.
                let offset_ms = r.at_ms as i64 - resume.elapsed_ms as i64;
                let lateness_s = if offset_ms > 0 {
                    let target =
                        start + Duration::from_secs_f64(offset_ms as f64 / 1_000.0 / compression);
                    if !wait_until(target, stop) {
                        pacer.aborted = true;
                        break;
                    }
                    target_us = Some(us_since(start, target));
                    (Instant::now().saturating_duration_since(target)).as_secs_f64()
                } else {
                    // Catch-up dispatch: fire now, but account the full
                    // deficit as lateness — never silently re-time the
                    // schedule.
                    target_us = Some(0);
                    (-offset_ms) as f64 / 1_000.0 / compression + start.elapsed().as_secs_f64()
                };
                pacer.lateness.record(lateness_s);
                if let Some(gauge) = inst.pace {
                    gauge.record_secs(lateness_s);
                }
            }
            pacer.record_issued(r.at_ms);
            if let Some(recorder) = inst.recorder {
                recorder.record_issued(pacer_shard);
            }
            let dispatched = Instant::now();
            let job = Job {
                req: InvocationRequest {
                    workload: r.workload,
                    input: workload.input,
                    function_index: r.function_index,
                    scheduled_at_ms: r.at_ms,
                    trace_id: faasrail_telemetry::derive_trace_id(run_id, seq),
                },
                dispatched,
                seq,
                // Unpaced/closed-loop dispatch is its own schedule: zero
                // lateness by construction.
                target_us: target_us.unwrap_or_else(|| us_since(start, dispatched)),
            };
            if tx.send(job).is_err() {
                break; // all workers died; stop issuing
            }
        }
        drop(tx); // workers drain everything dispatched, then exit

        for h in handles {
            pacer.merge(&h.join().expect("worker panicked"));
        }
        pacer
    });

    inst.sink.emit(&TelemetryEvent::RunEnd(RunSummary {
        issued: metrics.issued,
        completed: metrics.completed,
        errors: metrics.errors,
        aborted: metrics.aborted,
        wall_us: us_since(start, Instant::now()),
    }));
    inst.sink.flush();
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{InvocationResult, NoopBackend, OutcomeClass};
    use faasrail_core::Request;
    use faasrail_workloads::{CostModel, WorkloadId, WorkloadPool};
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tiny_trace(n: u64, spacing_ms: u64) -> RequestTrace {
        RequestTrace {
            duration_minutes: 1,
            requests: (0..n)
                .map(|i| Request {
                    at_ms: i * spacing_ms,
                    workload: WorkloadId(7), // vanilla pyaes
                    function_index: 0,
                })
                .collect(),
        }
    }

    fn vanilla_pool() -> WorkloadPool {
        WorkloadPool::vanilla(&CostModel::default_calibration())
    }

    #[test]
    fn unpaced_replay_serves_everything() {
        let trace = tiny_trace(200, 1);
        let pool = vanilla_pool();
        let m = replay(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::Unpaced, workers: 4 },
        );
        assert_eq!(m.issued, 200);
        assert_eq!(m.completed, 200);
        assert_eq!(m.errors, 0);
        assert!(!m.aborted);
        assert_eq!(m.per_kind.values().sum::<u64>(), 200);
    }

    #[test]
    // Re-enabled (was #[ignore]d as timing-sensitive): the tolerance is now
    // CI-grade — tens of milliseconds of median lateness, not sub-2ms — so
    // the test checks that pacing is *scheduled* rather than immediate
    // without asserting quiet-hardware accuracy. Sub-millisecond accuracy
    // on quiet machines is still observable via the recorded lateness
    // histogram in any real run.
    fn realtime_pacing_is_accurate() {
        // 50 requests spaced 4 ms apart: total 200 ms of schedule. The
        // replay must take at least that long (it cannot finish early), and
        // median lateness must stay within a loaded-CI-runner bound.
        let trace = tiny_trace(50, 4);
        let pool = vanilla_pool();
        let start = Instant::now();
        let m = replay(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::RealTime { compression: 1.0 }, workers: 2 },
        );
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(190), "finished too early: {elapsed:?}");
        assert_eq!(m.issued, 50);
        let p50_lateness = m.lateness.quantile(0.5);
        assert!(p50_lateness < 0.050, "median lateness {p50_lateness}s");
    }

    #[test]
    fn compression_speeds_up_replay() {
        let trace = tiny_trace(50, 10); // 500 ms of trace time
        let pool = vanilla_pool();
        let start = Instant::now();
        replay(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::RealTime { compression: 10.0 }, workers: 2 },
        );
        let elapsed = start.elapsed();
        assert!(elapsed < Duration::from_millis(300), "compression ignored: {elapsed:?}");
    }

    #[test]
    fn errors_and_cold_starts_counted() {
        struct Flaky(AtomicU64);
        impl Backend for Flaky {
            fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
                let n = self.0.fetch_add(1, Ordering::Relaxed);
                if n.is_multiple_of(2) {
                    InvocationResult::success(0.1, n.is_multiple_of(4))
                } else {
                    InvocationResult::app_error(0.1, "odd request rejected")
                }
            }
        }
        let trace = tiny_trace(100, 0);
        let pool = vanilla_pool();
        let m = replay(
            &trace,
            &pool,
            &Flaky(AtomicU64::new(0)),
            &ReplayConfig { pacing: Pacing::Unpaced, workers: 3 },
        );
        assert_eq!(m.completed + m.errors, 100);
        assert_eq!(m.completed, 50);
        assert_eq!(m.cold_starts, 25);
        // Failures are classified: all app errors here, no transport path.
        assert_eq!(m.app_errors, 50);
        assert_eq!(m.timeouts, 0);
        assert_eq!(m.transport_errors, 0);
    }

    #[test]
    fn panicking_backend_is_an_app_error_not_an_abort() {
        // Every 5th invocation panics mid-kernel. The run must complete,
        // classify each panic as an application error, and lose nothing.
        struct Exploding(AtomicU64);
        impl Backend for Exploding {
            fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
                let n = self.0.fetch_add(1, Ordering::Relaxed);
                if n % 5 == 4 {
                    panic!("kernel assertion failed on invocation {n}");
                }
                InvocationResult::success(0.1, false)
            }
        }
        let trace = tiny_trace(100, 0);
        let pool = vanilla_pool();
        let m = replay(
            &trace,
            &pool,
            &Exploding(AtomicU64::new(0)),
            &ReplayConfig { pacing: Pacing::Unpaced, workers: 4 },
        );
        assert_eq!(m.issued, 100);
        assert_eq!(m.completed, 80);
        assert_eq!(m.errors, 20);
        assert_eq!(m.app_errors, 20, "panics classify as app errors");
        assert_eq!(m.completed + m.errors, m.issued, "nothing lost to panics");
        assert!(!m.aborted);
    }

    #[test]
    fn panic_message_is_preserved() {
        struct Bomb;
        impl Backend for Bomb {
            fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
                panic!("boom with detail");
            }
        }
        let r = invoke_isolated(
            &Bomb,
            &InvocationRequest {
                workload: WorkloadId(7),
                input: faasrail_workloads::WorkloadInput::Pyaes { bytes: 16 },
                function_index: 0,
                scheduled_at_ms: 0,
                trace_id: 0,
            },
        );
        assert!(!r.ok);
        assert_eq!(r.outcome(), OutcomeClass::AppError);
        let msg = r.error.as_deref().unwrap_or("");
        assert!(msg.contains("backend panicked"), "{msg}");
        assert!(msg.contains("boom with detail"), "{msg}");
    }

    #[test]
    fn stop_flag_drains_and_reports_partial_metrics() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // A 100-second schedule that is stopped after ~60 ms: the replay
        // must return promptly with the dispatched prefix fully accounted.
        let trace = tiny_trace(10_000, 10);
        let pool = vanilla_pool();
        let stop = Arc::new(AtomicBool::new(false));
        let stopper = Arc::clone(&stop);
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            stopper.store(true, Ordering::SeqCst);
        });
        let start = Instant::now();
        let m = replay_until(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::RealTime { compression: 1.0 }, workers: 2 },
            &stop,
        );
        let elapsed = start.elapsed();
        killer.join().unwrap();
        assert!(m.aborted, "stop flag must mark the run aborted");
        assert!(m.issued > 0, "something was dispatched before the stop");
        assert!(m.issued < 10_000, "the stop prevented the full schedule");
        assert_eq!(m.completed + m.errors, m.issued, "drained prefix fully accounted");
        assert!(elapsed < Duration::from_secs(10), "stop must not wait out the schedule");
    }

    #[test]
    fn unset_stop_flag_changes_nothing() {
        let trace = tiny_trace(50, 0);
        let pool = vanilla_pool();
        let stop = AtomicBool::new(false);
        let m = replay_until(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::Unpaced, workers: 2 },
            &stop,
        );
        assert_eq!(m.issued, 50);
        assert_eq!(m.completed, 50);
        assert!(!m.aborted);
    }

    #[test]
    fn open_loop_does_not_stall_on_slow_backend() {
        // A backend slower than the request rate must not delay dispatch:
        // with 1 worker and 20 ms service on a 1 ms schedule, issuance still
        // finishes on schedule (~50 ms), while completions trail behind.
        struct Slow;
        impl Backend for Slow {
            fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
                std::thread::sleep(Duration::from_millis(5));
                InvocationResult::success(5.0, false)
            }
        }
        let trace = tiny_trace(40, 1);
        let pool = vanilla_pool();
        let m = replay(
            &trace,
            &pool,
            &Slow,
            &ReplayConfig { pacing: Pacing::RealTime { compression: 1.0 }, workers: 1 },
        );
        // All served eventually.
        assert_eq!(m.completed, 40);
        // Queueing must be visible in response times: the last requests
        // waited roughly 40×5 ms behind one worker.
        let p99 = m.response.quantile(0.99);
        assert!(p99 > 0.05, "p99 response {p99}s shows no queueing");
    }

    #[test]
    fn issued_per_minute_matches_schedule() {
        // Requests scheduled across 3 experiment minutes must land in the
        // right buckets of the achieved-rate series.
        let requests = vec![
            Request { at_ms: 0, workload: WorkloadId(7), function_index: 0 },
            Request { at_ms: 59_999, workload: WorkloadId(7), function_index: 0 },
            Request { at_ms: 60_000, workload: WorkloadId(7), function_index: 0 },
            Request { at_ms: 125_000, workload: WorkloadId(7), function_index: 0 },
        ];
        let trace = RequestTrace { duration_minutes: 3, requests };
        let pool = vanilla_pool();
        let m = replay(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::Unpaced, workers: 2 },
        );
        assert_eq!(m.issued_per_minute, vec![2, 1, 1]);
        assert_eq!(m.issued_per_minute.iter().sum::<u64>(), m.issued);
    }

    #[test]
    fn resumed_replay_catches_up_without_dropping_or_reordering() {
        // 40 requests spaced 10 ms apart; resume at 200 ms into trace
        // time. The first ~21 are overdue and must fire immediately (the
        // whole replay finishes well before the 400 ms the full schedule
        // would need), and nothing is dropped.
        let trace = tiny_trace(40, 10);
        let pool = vanilla_pool();
        let gauge = PaceGauge::new();
        let inst = ReplayInstruments { sink: &NULL_SINK, recorder: None, pace: Some(&gauge) };
        let start = Instant::now();
        let m = replay_resumed(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::RealTime { compression: 1.0 }, workers: 2 },
            &AtomicBool::new(false),
            &inst,
            &ResumeSpec { elapsed_ms: 200 },
        );
        let elapsed = start.elapsed();
        assert_eq!(m.issued, 40, "catch-up must not drop overdue requests");
        assert_eq!(m.completed, 40);
        // Only the post-resume tail (at_ms in 210..=390) is paced: ~190 ms.
        assert!(elapsed < Duration::from_millis(390), "resume must skip elapsed time: {elapsed:?}");
        assert!(elapsed >= Duration::from_millis(180), "future requests stay on schedule");
        // Coordinated-omission correctness: the overdue prefix records its
        // full deficit as lateness (at_ms=0 was 200 ms overdue).
        assert!(m.lateness.quantile(0.999) >= 0.15, "deficit must be recorded as lateness");
        assert!(gauge.max_lag_ms() >= 150, "gauge saw the catch-up backlog");
    }

    #[test]
    fn resume_at_zero_is_plain_observed_replay() {
        let trace = tiny_trace(30, 1);
        let pool = vanilla_pool();
        let m = replay_resumed(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::RealTime { compression: 10.0 }, workers: 2 },
            &AtomicBool::new(false),
            &ReplayInstruments::default(),
            &ResumeSpec::default(),
        );
        assert_eq!(m.issued, 30);
        assert_eq!(m.completed, 30);
        assert!(!m.aborted);
    }

    #[test]
    fn pace_gauge_tracks_latest_and_max() {
        let g = PaceGauge::new();
        assert_eq!(g.lag_ms(), 0);
        g.record_secs(0.250);
        g.record_secs(0.010);
        assert_eq!(g.lag_ms(), 10, "latest wins");
        assert_eq!(g.max_lag_ms(), 250, "max is sticky");
        g.record_secs(-1.0);
        assert_eq!(g.lag_ms(), 0, "negative lateness clamps to zero");
    }

    #[test]
    fn closed_loop_hides_queueing_open_loop_exposes() {
        struct Slow;
        impl Backend for Slow {
            fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
                std::thread::sleep(Duration::from_millis(4));
                InvocationResult::success(4.0, false)
            }
        }
        let trace = tiny_trace(60, 0); // all due at t=0: 1 worker is 240 ms behind
        let pool = vanilla_pool();
        let open =
            replay(&trace, &pool, &Slow, &ReplayConfig { pacing: Pacing::Unpaced, workers: 1 });
        let closed =
            replay(&trace, &pool, &Slow, &ReplayConfig { pacing: Pacing::ClosedLoop, workers: 1 });
        // Open loop counts the queue wait; closed loop reports ~service time
        // — the coordinated-omission gap.
        let open_p99 = open.response.quantile(0.99);
        let closed_p99 = closed.response.quantile(0.99);
        assert!(
            open_p99 > closed_p99 * 5.0,
            "open p99 {open_p99}s should dwarf closed p99 {closed_p99}s"
        );
        assert!(closed_p99 < 0.02, "closed loop should report near-service time");
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        let trace = tiny_trace(1, 1);
        let pool = vanilla_pool();
        replay(&trace, &pool, &NoopBackend, &ReplayConfig { pacing: Pacing::Unpaced, workers: 0 });
    }

    #[test]
    fn observed_replay_emits_one_span_per_request() {
        use faasrail_telemetry::{RingSink, TelemetryEvent};
        struct Flaky(AtomicU64);
        impl Backend for Flaky {
            fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
                if self.0.fetch_add(1, Ordering::Relaxed).is_multiple_of(3) {
                    InvocationResult::timeout("deadline")
                } else {
                    InvocationResult::success(0.1, false)
                }
            }
        }
        let trace = tiny_trace(90, 0);
        let pool = vanilla_pool();
        let sink = RingSink::with_capacity(200);
        let inst = ReplayInstruments { sink: &sink, recorder: None, pace: None };
        let m = replay_observed(
            &trace,
            &pool,
            &Flaky(AtomicU64::new(0)),
            &ReplayConfig { pacing: Pacing::Unpaced, workers: 3 },
            &AtomicBool::new(false),
            &inst,
        );

        let events = sink.events();
        assert!(matches!(events.first(), Some(TelemetryEvent::RunStart(_))));
        assert!(matches!(events.last(), Some(TelemetryEvent::RunEnd(_))));
        let spans: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Invocation(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len() as u64, m.issued);
        // Sequence numbers are a permutation of 0..issued.
        let mut seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..m.issued).collect::<Vec<_>>());
        // The span outcome partition matches the final metrics exactly.
        let ok = spans.iter().filter(|s| s.outcome == OutcomeClass::Ok).count() as u64;
        let timeouts = spans.iter().filter(|s| s.outcome == OutcomeClass::Timeout).count() as u64;
        assert_eq!(ok, m.completed);
        assert_eq!(timeouts, m.timeouts);
        // Failed spans carry the error message; successful ones don't.
        assert!(spans.iter().all(|s| (s.outcome == OutcomeClass::Ok) == s.error.is_none()));
        // Stage timestamps are ordered for every span.
        for s in &spans {
            assert!(s.dispatched_us <= s.picked_up_us, "{s:?}");
            assert!(s.picked_up_us <= s.completed_us, "{s:?}");
        }
        if let Some(TelemetryEvent::RunEnd(end)) = events.last() {
            assert_eq!(end.issued, m.issued);
            assert_eq!(end.completed, m.completed);
            assert_eq!(end.errors, m.errors);
        }
    }

    #[test]
    fn observed_replay_stamps_unique_nonzero_trace_ids() {
        use faasrail_telemetry::{RingSink, TelemetryEvent};
        let trace = tiny_trace(80, 0);
        let pool = vanilla_pool();
        let sink = RingSink::with_capacity(200);
        let inst = ReplayInstruments { sink: &sink, recorder: None, pace: None };
        replay_observed(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::Unpaced, workers: 3 },
            &AtomicBool::new(false),
            &inst,
        );
        let mut ids: Vec<u64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Invocation(s) => Some(s.trace_id),
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 80);
        assert!(ids.iter().all(|&id| id != 0), "every span must be traced");
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 80, "trace ids must be unique within a run");
    }

    #[test]
    fn killed_replay_leaves_a_fully_parseable_event_log() {
        use faasrail_telemetry::{parse_jsonl, JsonlSink, TelemetryEvent};
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        // Regression test for truncated logs on graceful stop: a
        // 100-second schedule is stopped after ~50 ms; the JSONL log must
        // parse to the last emitted span — span count == issued, closed by
        // an aborted run_end — because `replay_observed` flushes the sink
        // on drain (and `JsonlSink` flushes again on drop).
        let path = std::env::temp_dir()
            .join(format!("faasrail-killed-replay-{}.jsonl", std::process::id()));
        let trace = tiny_trace(10_000, 10);
        let pool = vanilla_pool();
        let stop = Arc::new(AtomicBool::new(false));
        let stopper = Arc::clone(&stop);
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            stopper.store(true, Ordering::SeqCst);
        });
        let m = {
            let sink = JsonlSink::create(&path).unwrap();
            let inst = ReplayInstruments { sink: &sink, recorder: None, pace: None };
            replay_observed(
                &trace,
                &pool,
                &NoopBackend,
                &ReplayConfig { pacing: Pacing::RealTime { compression: 1.0 }, workers: 2 },
                &stop,
                &inst,
            )
            // sink dropped here, before the log is read back
        };
        killer.join().unwrap();
        assert!(m.aborted);
        assert!(m.issued < 10_000, "stop must truncate the run");

        let events =
            parse_jsonl(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(events.first(), Some(TelemetryEvent::RunStart(_))));
        let spans =
            events.iter().filter(|e| matches!(e, TelemetryEvent::Invocation(_))).count() as u64;
        assert_eq!(spans, m.issued, "log must contain every dispatched span");
        match events.last() {
            Some(TelemetryEvent::RunEnd(end)) => {
                assert!(end.aborted);
                assert_eq!(end.issued, m.issued);
            }
            other => panic!("log must close with run_end, got {other:?}"),
        }
    }

    #[test]
    fn observed_replay_metrics_match_plain_replay_counters() {
        use faasrail_telemetry::Recorder;
        let trace = tiny_trace(120, 0);
        let pool = vanilla_pool();
        let recorder = Recorder::new(3); // workers + 1
        let inst = ReplayInstruments {
            sink: &faasrail_telemetry::NullSink,
            recorder: Some(&recorder),
            pace: None,
        };
        let m = replay_observed(
            &trace,
            &pool,
            &NoopBackend,
            &ReplayConfig { pacing: Pacing::Unpaced, workers: 2 },
            &AtomicBool::new(false),
            &inst,
        );
        let snap = recorder.snapshot();
        assert_eq!(snap.issued, m.issued);
        assert_eq!(snap.completed, m.completed);
        assert_eq!(snap.errors_total(), m.errors);
        assert_eq!(snap.response.total(), m.response.total());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        // Windowed snapshots are lossless: deltas between any chain of
        // snapshots taken *while the replay runs* telescope to the final
        // cumulative snapshot, which in turn equals the RunMetrics counters.
        #[test]
        fn recorder_window_deltas_sum_to_run_metrics(n in 1u64..150, err_mod in 2u64..6) {
            use faasrail_telemetry::{Recorder, Snapshot};
            use std::sync::Arc;

            struct Flaky(AtomicU64, u64);
            impl Backend for Flaky {
                fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
                    let i = self.0.fetch_add(1, Ordering::Relaxed);
                    if i.is_multiple_of(self.1) {
                        InvocationResult::transport("refused")
                    } else {
                        InvocationResult::success(0.05, i.is_multiple_of(7))
                    }
                }
            }

            let trace = tiny_trace(n, 0);
            let pool = vanilla_pool();
            let recorder = Arc::new(Recorder::new(3));
            let sampling = Arc::new(AtomicBool::new(true));

            let sampler = {
                let recorder = Arc::clone(&recorder);
                let sampling = Arc::clone(&sampling);
                std::thread::spawn(move || {
                    let mut snaps = Vec::new();
                    while sampling.load(Ordering::Relaxed) {
                        snaps.push(recorder.snapshot());
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    snaps
                })
            };

            let inst = ReplayInstruments {
                sink: &faasrail_telemetry::NullSink,
                recorder: Some(&recorder),
                pace: None,
            };
            let m = replay_observed(
                &trace,
                &pool,
                &Flaky(AtomicU64::new(0), err_mod),
                &ReplayConfig { pacing: Pacing::Unpaced, workers: 2 },
                &AtomicBool::new(false),
                &inst,
            );
            sampling.store(false, Ordering::Relaxed);
            let mut snaps = sampler.join().unwrap();
            snaps.push(recorder.snapshot()); // final cumulative state

            // Sum the per-window deltas across the whole snapshot chain.
            let mut acc = Snapshot::default();
            let mut prev = Snapshot::default();
            for s in &snaps {
                let w = s.delta(&prev);
                acc.issued += w.issued;
                acc.completed += w.completed;
                for (a, b) in acc.errors.iter_mut().zip(&w.errors) { *a += b; }
                acc.cold_starts += w.cold_starts;
                acc.response.merge(&w.response);
                prev = s.clone();
            }

            prop_assert_eq!(acc.issued, m.issued);
            prop_assert_eq!(acc.completed, m.completed);
            prop_assert_eq!(acc.errors_total(), m.errors);
            prop_assert_eq!(acc.errors[2], m.transport_errors);
            prop_assert_eq!(acc.cold_starts, m.cold_starts);
            prop_assert_eq!(acc.response.total(), m.response.total());
        }
    }
}

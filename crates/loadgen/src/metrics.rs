//! Run metrics: what a replay measures.

use faasrail_stats::histogram::LogHistogram;
use faasrail_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Metrics collected by one replay (or one worker, before merging).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Requests handed to the backend.
    pub issued: u64,
    /// Requests the backend reported as successful.
    pub completed: u64,
    /// Requests the backend reported as failed (all classes).
    pub errors: u64,
    /// Failures the backend executed and rejected (not retryable).
    /// `app_errors + timeouts + transport_errors + shed == errors`.
    #[serde(default)]
    pub app_errors: u64,
    /// Failures where the per-request deadline expired.
    #[serde(default)]
    pub timeouts: u64,
    /// Failures in the network path (connect/read/write, gateway 5xx).
    #[serde(default)]
    pub transport_errors: u64,
    /// Requests refused by overload protection (gateway `429` load
    /// shedding or an open client-side circuit breaker).
    #[serde(default)]
    pub shed: u64,
    /// Whether the run was stopped early via the replay stop flag; the
    /// counters then cover only the dispatched prefix of the trace.
    #[serde(default)]
    pub aborted: bool,
    /// Cold starts reported by the backend.
    pub cold_starts: u64,
    /// End-to-end response time (dispatch → backend return), seconds.
    pub response: LogHistogram,
    /// Backend-reported pure service time, seconds.
    pub service: LogHistogram,
    /// Dispatch lateness (actual fire − scheduled fire), seconds — the
    /// pacer's accuracy.
    pub lateness: LogHistogram,
    /// Completed requests per benchmark kind.
    pub per_kind: BTreeMap<WorkloadKind, u64>,
    /// Requests dispatched per scheduled experiment minute (achieved-rate
    /// series; indexed by `scheduled_at_ms / 60_000`).
    pub issued_per_minute: Vec<u64>,
}

impl Default for RunMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl RunMetrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        RunMetrics {
            issued: 0,
            completed: 0,
            errors: 0,
            app_errors: 0,
            timeouts: 0,
            transport_errors: 0,
            shed: 0,
            aborted: false,
            cold_starts: 0,
            response: LogHistogram::latency_seconds(),
            service: LogHistogram::latency_seconds(),
            lateness: LogHistogram::new(1e-6, 60.0, 1.05),
            per_kind: BTreeMap::new(),
            issued_per_minute: Vec::new(),
        }
    }

    /// Record one invocation result against the per-class outcome counters
    /// (and `completed`/`errors`).
    pub fn record_outcome(&mut self, result: &crate::backend::InvocationResult) {
        use crate::backend::OutcomeClass;
        match result.outcome() {
            OutcomeClass::Ok => self.completed += 1,
            OutcomeClass::AppError => {
                self.errors += 1;
                self.app_errors += 1;
            }
            OutcomeClass::Timeout => {
                self.errors += 1;
                self.timeouts += 1;
            }
            OutcomeClass::Transport => {
                self.errors += 1;
                self.transport_errors += 1;
            }
            OutcomeClass::Shed => {
                self.errors += 1;
                self.shed += 1;
            }
        }
    }

    /// One-line per-class outcome breakdown for replay summaries.
    pub fn outcome_breakdown(&self) -> String {
        format!(
            "ok={} app-error={} timeout={} transport={} shed={}",
            self.completed, self.app_errors, self.timeouts, self.transport_errors, self.shed
        )
    }

    /// Count one dispatched request against its scheduled minute.
    pub fn record_issued(&mut self, scheduled_at_ms: u64) {
        let minute = (scheduled_at_ms / 60_000) as usize;
        if self.issued_per_minute.len() <= minute {
            self.issued_per_minute.resize(minute + 1, 0);
        }
        self.issued_per_minute[minute] += 1;
        self.issued += 1;
    }

    /// Merge another worker's metrics into this one.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.issued += other.issued;
        self.completed += other.completed;
        self.errors += other.errors;
        self.app_errors += other.app_errors;
        self.timeouts += other.timeouts;
        self.transport_errors += other.transport_errors;
        self.shed += other.shed;
        self.aborted |= other.aborted;
        self.cold_starts += other.cold_starts;
        self.response.merge(&other.response);
        self.service.merge(&other.service);
        self.lateness.merge(&other.lateness);
        for (k, v) in &other.per_kind {
            *self.per_kind.entry(*k).or_insert(0) += v;
        }
        if self.issued_per_minute.len() < other.issued_per_minute.len() {
            self.issued_per_minute.resize(other.issued_per_minute.len(), 0);
        }
        for (a, b) in self.issued_per_minute.iter_mut().zip(&other.issued_per_minute) {
            *a += b;
        }
    }

    /// Response-time quantile in milliseconds (`NaN`-free convenience).
    pub fn response_quantile_ms(&self, q: f64) -> f64 {
        if self.response.total() == 0 {
            return f64::NAN;
        }
        self.response.quantile(q) * 1_000.0
    }

    /// Achieved throughput given the experiment duration. `NaN` for a
    /// non-positive duration — a degenerate run has no rate, and `NaN`
    /// (unlike `inf`) can't silently survive downstream arithmetic.
    pub fn achieved_rps(&self, duration_secs: f64) -> f64 {
        if duration_secs <= 0.0 {
            return f64::NAN;
        }
        self.issued as f64 / duration_secs
    }

    /// Errors over finished requests (`errors / (completed + errors)`);
    /// `0.0` when nothing has finished.
    pub fn error_rate(&self) -> f64 {
        let finished = self.completed + self.errors;
        if finished == 0 {
            return 0.0;
        }
        self.errors as f64 / finished as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = RunMetrics::new();
        a.issued = 10;
        a.completed = 9;
        a.errors = 1;
        a.app_errors = 1;
        a.response.record(0.010);
        a.per_kind.insert(WorkloadKind::Pyaes, 5);

        let mut b = RunMetrics::new();
        b.issued = 5;
        b.completed = 2;
        b.errors = 3;
        b.timeouts = 1;
        b.transport_errors = 1;
        b.shed = 1;
        b.aborted = true;
        b.response.record(0.020);
        b.per_kind.insert(WorkloadKind::Pyaes, 2);
        b.per_kind.insert(WorkloadKind::Matmul, 3);

        a.merge(&b);
        assert_eq!(a.issued, 15);
        assert_eq!(a.completed, 11);
        assert_eq!(a.errors, 4);
        assert_eq!(a.app_errors, 1);
        assert_eq!(a.timeouts, 1);
        assert_eq!(a.transport_errors, 1);
        assert_eq!(a.shed, 1);
        assert!(a.aborted, "aborted is sticky across merges");
        assert_eq!(a.response.total(), 2);
        assert_eq!(a.per_kind[&WorkloadKind::Pyaes], 7);
        assert_eq!(a.per_kind[&WorkloadKind::Matmul], 3);
    }

    #[test]
    fn record_outcome_classifies() {
        use crate::backend::InvocationResult;
        let mut m = RunMetrics::new();
        m.record_outcome(&InvocationResult::success(1.0, false));
        m.record_outcome(&InvocationResult::app_error(1.0, "rejected"));
        m.record_outcome(&InvocationResult::timeout("deadline"));
        m.record_outcome(&InvocationResult::transport("refused"));
        m.record_outcome(&InvocationResult::transport("reset"));
        m.record_outcome(&InvocationResult::shed("circuit open"));
        assert_eq!(m.completed, 1);
        assert_eq!(m.errors, 5);
        assert_eq!(m.app_errors, 1);
        assert_eq!(m.timeouts, 1);
        assert_eq!(m.transport_errors, 2);
        assert_eq!(m.shed, 1);
        assert_eq!(m.app_errors + m.timeouts + m.transport_errors + m.shed, m.errors);
        assert_eq!(m.outcome_breakdown(), "ok=1 app-error=1 timeout=1 transport=2 shed=1");
    }

    #[test]
    fn quantile_nan_when_empty() {
        let m = RunMetrics::new();
        assert!(m.response_quantile_ms(0.5).is_nan());
    }

    #[test]
    fn achieved_rps() {
        let mut m = RunMetrics::new();
        m.issued = 1200;
        assert!((m.achieved_rps(60.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn achieved_rps_nan_for_degenerate_durations() {
        let mut m = RunMetrics::new();
        m.issued = 10;
        assert!(m.achieved_rps(0.0).is_nan());
        assert!(m.achieved_rps(-1.0).is_nan());
    }

    #[test]
    fn error_rate_partitions() {
        let mut m = RunMetrics::new();
        assert_eq!(m.error_rate(), 0.0, "empty run has no error rate");
        m.completed = 90;
        m.errors = 10;
        assert!((m.error_rate() - 0.1).abs() < 1e-12);
        m.completed = 0;
        m.errors = 5;
        assert!((m.error_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_extends_shorter_minute_series() {
        // Short ← long: the receiver must grow to fit the donor.
        let mut short = RunMetrics::new();
        short.issued_per_minute = vec![1, 2];
        let mut long = RunMetrics::new();
        long.issued_per_minute = vec![10, 20, 30, 40];
        short.merge(&long);
        assert_eq!(short.issued_per_minute, vec![11, 22, 30, 40]);
    }

    #[test]
    fn merge_keeps_longer_minute_series_tail() {
        // Long ← short: the tail beyond the donor must survive untouched.
        let mut long = RunMetrics::new();
        long.issued_per_minute = vec![10, 20, 30, 40];
        let mut short = RunMetrics::new();
        short.issued_per_minute = vec![1, 2];
        long.merge(&short);
        assert_eq!(long.issued_per_minute, vec![11, 22, 30, 40]);
    }
}

//! Run metrics: what a replay measures.

use faasrail_stats::histogram::LogHistogram;
use faasrail_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Metrics collected by one replay (or one worker, before merging).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Requests handed to the backend.
    pub issued: u64,
    /// Requests the backend reported as successful.
    pub completed: u64,
    /// Requests the backend reported as failed.
    pub errors: u64,
    /// Cold starts reported by the backend.
    pub cold_starts: u64,
    /// End-to-end response time (dispatch → backend return), seconds.
    pub response: LogHistogram,
    /// Backend-reported pure service time, seconds.
    pub service: LogHistogram,
    /// Dispatch lateness (actual fire − scheduled fire), seconds — the
    /// pacer's accuracy.
    pub lateness: LogHistogram,
    /// Completed requests per benchmark kind.
    pub per_kind: BTreeMap<WorkloadKind, u64>,
    /// Requests dispatched per scheduled experiment minute (achieved-rate
    /// series; indexed by `scheduled_at_ms / 60_000`).
    pub issued_per_minute: Vec<u64>,
}

impl Default for RunMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl RunMetrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        RunMetrics {
            issued: 0,
            completed: 0,
            errors: 0,
            cold_starts: 0,
            response: LogHistogram::latency_seconds(),
            service: LogHistogram::latency_seconds(),
            lateness: LogHistogram::new(1e-6, 60.0, 1.05),
            per_kind: BTreeMap::new(),
            issued_per_minute: Vec::new(),
        }
    }

    /// Count one dispatched request against its scheduled minute.
    pub fn record_issued(&mut self, scheduled_at_ms: u64) {
        let minute = (scheduled_at_ms / 60_000) as usize;
        if self.issued_per_minute.len() <= minute {
            self.issued_per_minute.resize(minute + 1, 0);
        }
        self.issued_per_minute[minute] += 1;
        self.issued += 1;
    }

    /// Merge another worker's metrics into this one.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.issued += other.issued;
        self.completed += other.completed;
        self.errors += other.errors;
        self.cold_starts += other.cold_starts;
        self.response.merge(&other.response);
        self.service.merge(&other.service);
        self.lateness.merge(&other.lateness);
        for (k, v) in &other.per_kind {
            *self.per_kind.entry(*k).or_insert(0) += v;
        }
        if self.issued_per_minute.len() < other.issued_per_minute.len() {
            self.issued_per_minute.resize(other.issued_per_minute.len(), 0);
        }
        for (a, b) in self.issued_per_minute.iter_mut().zip(&other.issued_per_minute) {
            *a += b;
        }
    }

    /// Response-time quantile in milliseconds (`NaN`-free convenience).
    pub fn response_quantile_ms(&self, q: f64) -> f64 {
        if self.response.total() == 0 {
            return f64::NAN;
        }
        self.response.quantile(q) * 1_000.0
    }

    /// Achieved throughput given the experiment duration.
    pub fn achieved_rps(&self, duration_secs: f64) -> f64 {
        self.issued as f64 / duration_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = RunMetrics::new();
        a.issued = 10;
        a.completed = 9;
        a.errors = 1;
        a.response.record(0.010);
        a.per_kind.insert(WorkloadKind::Pyaes, 5);

        let mut b = RunMetrics::new();
        b.issued = 5;
        b.completed = 5;
        b.response.record(0.020);
        b.per_kind.insert(WorkloadKind::Pyaes, 2);
        b.per_kind.insert(WorkloadKind::Matmul, 3);

        a.merge(&b);
        assert_eq!(a.issued, 15);
        assert_eq!(a.completed, 14);
        assert_eq!(a.errors, 1);
        assert_eq!(a.response.total(), 2);
        assert_eq!(a.per_kind[&WorkloadKind::Pyaes], 7);
        assert_eq!(a.per_kind[&WorkloadKind::Matmul], 3);
    }

    #[test]
    fn quantile_nan_when_empty() {
        let m = RunMetrics::new();
        assert!(m.response_quantile_ms(0.5).is_nan());
    }

    #[test]
    fn achieved_rps() {
        let mut m = RunMetrics::new();
        m.issued = 1200;
        assert!((m.achieved_rps(60.0) - 20.0).abs() < 1e-12);
    }
}

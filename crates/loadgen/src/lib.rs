//! FaaSRail's online load generator.
//!
//! The offline shrink ray emits experiment specifications; this crate
//! replays them (expanded to request traces) against a backend FaaS system
//! in real time. Design points, mirroring the paper's "high-performant,
//! versatile load generator":
//!
//! * **open-loop** dispatch — the schedule never waits for the backend, so
//!   overload manifests as queueing latency rather than a silently reduced
//!   request rate;
//! * hybrid sleep/spin pacing with recorded dispatch lateness, so pacing
//!   accuracy is itself a measured quantity;
//! * pluggable [`backend::Backend`]; the in-process backend executes the
//!   actual workload kernels, and `faasrail-faas-sim` provides a simulated
//!   cluster;
//! * time compression for replaying long traces in shorter wall-clock runs.

pub mod backend;
pub mod metrics;
pub mod replay;
pub mod shard;
pub mod synth;

pub use backend::{
    Backend, InProcessBackend, InvocationRequest, InvocationResult, NoopBackend, OutcomeClass,
};
pub use metrics::RunMetrics;
pub use replay::{
    replay, replay_observed, replay_resumed, replay_until, PaceGauge, Pacing, ReplayConfig,
    ReplayInstruments, ResumeSpec,
};
pub use shard::{partition_remainder, remainder_after, shard_of, ShardSpec};
pub use synth::{fixed_rate_trace, ArrivalProcess};

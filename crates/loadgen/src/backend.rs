//! The backend interface: where generated requests are sent.
//!
//! FaaSRail's online component replays a request trace "against a backend
//! FaaS system" (paper §1). Anything that can synchronously serve an
//! invocation implements [`Backend`]: the discrete-event cluster simulator,
//! the real-time kernel-executing backend, or a user's HTTP gateway shim.

use faasrail_workloads::{WorkloadId, WorkloadInput};
use serde::{Deserialize, Serialize};

/// One invocation to serve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationRequest {
    /// Pool id of the Workload.
    pub workload: WorkloadId,
    /// The concrete input to execute.
    pub input: WorkloadInput,
    /// The originating (aggregated) Function, for per-function accounting.
    pub function_index: u32,
    /// When the request was *scheduled* to fire, ms from experiment start.
    pub scheduled_at_ms: u64,
}

/// What the backend reports back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvocationResult {
    /// Whether the invocation succeeded.
    pub ok: bool,
    /// Pure service (execution) time, milliseconds.
    pub service_ms: f64,
    /// Whether a sandbox had to be cold-started.
    pub cold_start: bool,
}

/// A synchronous invocation sink.
///
/// `invoke` is called from many worker threads concurrently; implementations
/// must be `Send + Sync` and are expected to block for the invocation's
/// duration (the load generator is open-loop, so blocking a worker never
/// delays the request schedule).
pub trait Backend: Send + Sync {
    /// Serve one invocation.
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult;

    /// Optional human-readable name for reports.
    fn name(&self) -> &str {
        "backend"
    }
}

/// A trivial backend that acknowledges instantly — for testing the
/// generator itself and for pacing-accuracy benchmarks.
#[derive(Debug, Default)]
pub struct NoopBackend;

impl Backend for NoopBackend {
    fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
        InvocationResult { ok: true, service_ms: 0.0, cold_start: false }
    }

    fn name(&self) -> &str {
        "noop"
    }
}

/// A backend that *executes the actual workload kernel* in the calling
/// worker thread — the "real workloads, really running" half of FaaSRail.
#[derive(Debug, Default)]
pub struct InProcessBackend;

impl Backend for InProcessBackend {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        let start = std::time::Instant::now();
        std::hint::black_box(faasrail_workloads::kernels::execute(&req.input));
        InvocationResult {
            ok: true,
            service_ms: start.elapsed().as_secs_f64() * 1_000.0,
            cold_start: false,
        }
    }

    fn name(&self) -> &str {
        "in-process"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> InvocationRequest {
        InvocationRequest {
            workload: WorkloadId(0),
            input: WorkloadInput::Pyaes { bytes: 4096 },
            function_index: 0,
            scheduled_at_ms: 0,
        }
    }

    #[test]
    fn noop_is_instant_and_ok() {
        let r = NoopBackend.invoke(&req());
        assert!(r.ok);
        assert_eq!(r.service_ms, 0.0);
        assert!(!r.cold_start);
    }

    #[test]
    fn in_process_reports_real_time() {
        let r = InProcessBackend.invoke(&req());
        assert!(r.ok);
        assert!(r.service_ms > 0.0);
    }
}

//! The backend interface: where generated requests are sent.
//!
//! FaaSRail's online component replays a request trace "against a backend
//! FaaS system" (paper §1). Anything that can synchronously serve an
//! invocation implements [`Backend`]: the discrete-event cluster simulator,
//! the real-time kernel-executing backend, or a user's HTTP gateway shim.

use faasrail_workloads::{WorkloadId, WorkloadInput};
use serde::{Deserialize, Serialize};

/// One invocation to serve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvocationRequest {
    /// Pool id of the Workload.
    pub workload: WorkloadId,
    /// The concrete input to execute.
    pub input: WorkloadInput,
    /// The originating (aggregated) Function, for per-function accounting.
    pub function_index: u32,
    /// When the request was *scheduled* to fire, ms from experiment start.
    pub scheduled_at_ms: u64,
    /// Per-invocation trace id for cross-tier span joining; `0` means
    /// untraced (requests serialized before tracing existed, or callers
    /// that don't care). Networked backends also propagate it in the
    /// `X-FaaSRail-Trace` header so gateways can read it without parsing
    /// the body.
    #[serde(default)]
    pub trace_id: u64,
}

/// Classification of a failed (or successful) invocation. The canonical
/// definition lives in `faasrail-telemetry` (the observability substrate
/// sits below this crate so spans and run metrics share one vocabulary);
/// re-exported here because backends are the ones producing it.
pub use faasrail_telemetry::OutcomeClass;

/// What the backend reports back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationResult {
    /// Whether the invocation succeeded.
    pub ok: bool,
    /// Pure service (execution) time, milliseconds.
    pub service_ms: f64,
    /// Whether a sandbox had to be cold-started.
    pub cold_start: bool,
    /// Human-readable failure detail; `None` on success. Carried over the
    /// wire by `faasrail-gateway` so remote failures stay diagnosable.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// Failure classification. Defaults to [`OutcomeClass::Ok`] when absent
    /// (pre-gateway serialized results); use [`Self::outcome`] rather than
    /// reading this field so unclassified failures count as app errors.
    #[serde(default)]
    pub class: OutcomeClass,
}

impl InvocationResult {
    /// A successful invocation.
    pub fn success(service_ms: f64, cold_start: bool) -> Self {
        InvocationResult { ok: true, service_ms, cold_start, error: None, class: OutcomeClass::Ok }
    }

    /// An application-level failure (the backend ran the request and it
    /// failed). Never retried by networked backends.
    pub fn app_error(service_ms: f64, error: impl Into<String>) -> Self {
        InvocationResult {
            ok: false,
            service_ms,
            cold_start: false,
            error: Some(error.into()),
            class: OutcomeClass::AppError,
        }
    }

    /// A deadline expiry: no response within the per-request budget.
    pub fn timeout(error: impl Into<String>) -> Self {
        InvocationResult {
            ok: false,
            service_ms: 0.0,
            cold_start: false,
            error: Some(error.into()),
            class: OutcomeClass::Timeout,
        }
    }

    /// A transport-level failure (connect/read/write error or gateway 5xx
    /// after the retry budget was exhausted).
    pub fn transport(error: impl Into<String>) -> Self {
        InvocationResult {
            ok: false,
            service_ms: 0.0,
            cold_start: false,
            error: Some(error.into()),
            class: OutcomeClass::Transport,
        }
    }

    /// A request refused by overload protection (gateway `429` or an open
    /// client-side circuit breaker) without consuming backend resources.
    pub fn shed(error: impl Into<String>) -> Self {
        InvocationResult {
            ok: false,
            service_ms: 0.0,
            cold_start: false,
            error: Some(error.into()),
            class: OutcomeClass::Shed,
        }
    }

    /// Effective outcome class: failures without an explicit classification
    /// (results serialized before `class` existed) count as app errors.
    pub fn outcome(&self) -> OutcomeClass {
        match (self.ok, self.class) {
            (true, _) => OutcomeClass::Ok,
            (false, OutcomeClass::Ok) => OutcomeClass::AppError,
            (false, class) => class,
        }
    }
}

/// A synchronous invocation sink.
///
/// `invoke` is called from many worker threads concurrently; implementations
/// must be `Send + Sync` and are expected to block for the invocation's
/// duration (the load generator is open-loop, so blocking a worker never
/// delays the request schedule).
pub trait Backend: Send + Sync {
    /// Serve one invocation.
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult;

    /// Optional human-readable name for reports.
    fn name(&self) -> &str {
        "backend"
    }
}

/// Sharing a backend between the replayer and a network gateway (or several
/// gateways) only needs an `Arc`: the trait object keeps working behind it.
impl<B: Backend + ?Sized> Backend for std::sync::Arc<B> {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        (**self).invoke(req)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A trivial backend that acknowledges instantly — for testing the
/// generator itself and for pacing-accuracy benchmarks.
#[derive(Debug, Default)]
pub struct NoopBackend;

impl Backend for NoopBackend {
    fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
        InvocationResult::success(0.0, false)
    }

    fn name(&self) -> &str {
        "noop"
    }
}

/// A backend that *executes the actual workload kernel* in the calling
/// worker thread — the "real workloads, really running" half of FaaSRail.
#[derive(Debug, Default)]
pub struct InProcessBackend;

impl Backend for InProcessBackend {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        let start = std::time::Instant::now();
        std::hint::black_box(faasrail_workloads::kernels::execute(&req.input));
        InvocationResult::success(start.elapsed().as_secs_f64() * 1_000.0, false)
    }

    fn name(&self) -> &str {
        "in-process"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> InvocationRequest {
        InvocationRequest {
            workload: WorkloadId(0),
            input: WorkloadInput::Pyaes { bytes: 4096 },
            function_index: 0,
            scheduled_at_ms: 0,
            trace_id: 0xABCD,
        }
    }

    #[test]
    fn noop_is_instant_and_ok() {
        let r = NoopBackend.invoke(&req());
        assert!(r.ok);
        assert_eq!(r.service_ms, 0.0);
        assert!(!r.cold_start);
        assert_eq!(r.error, None);
        assert_eq!(r.outcome(), OutcomeClass::Ok);
    }

    #[test]
    fn in_process_reports_real_time() {
        let r = InProcessBackend.invoke(&req());
        assert!(r.ok);
        assert!(r.service_ms > 0.0);
    }

    #[test]
    fn arc_shared_backend_still_invokes() {
        let shared: std::sync::Arc<dyn Backend> = std::sync::Arc::new(NoopBackend);
        let r = shared.invoke(&req());
        assert!(r.ok);
        assert_eq!(shared.name(), "noop");
    }

    #[test]
    fn outcome_classification() {
        assert_eq!(InvocationResult::success(1.0, true).outcome(), OutcomeClass::Ok);
        assert_eq!(InvocationResult::app_error(1.0, "boom").outcome(), OutcomeClass::AppError);
        assert_eq!(InvocationResult::timeout("deadline").outcome(), OutcomeClass::Timeout);
        assert_eq!(InvocationResult::transport("refused").outcome(), OutcomeClass::Transport);
        assert_eq!(InvocationResult::shed("queue full").outcome(), OutcomeClass::Shed);
        // A pre-classification failure (ok=false, class absent → Ok) counts
        // as an application error.
        let legacy = InvocationResult {
            ok: false,
            service_ms: 0.0,
            cold_start: false,
            error: None,
            class: OutcomeClass::Ok,
        };
        assert_eq!(legacy.outcome(), OutcomeClass::AppError);
    }

    #[test]
    fn request_roundtrips_through_json() {
        let r = req();
        let json = serde_json::to_string(&r).unwrap();
        let back: InvocationRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);

        // A pre-tracing payload (no trace_id key) still deserializes, as
        // untraced.
        let legacy = r#"{"workload":0,"input":{"Pyaes":{"bytes":64}},"function_index":1,"scheduled_at_ms":2}"#;
        let back: InvocationRequest = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.trace_id, 0);
    }

    #[test]
    fn result_error_field_is_optional_on_the_wire() {
        // Success serializes without an `error` key at all.
        let ok = InvocationResult::success(2.5, false);
        let json = serde_json::to_string(&ok).unwrap();
        assert!(!json.contains("error"), "{json}");
        let back: InvocationResult = serde_json::from_str(&json).unwrap();
        assert_eq!(ok, back);

        // A pre-`error`/`class` payload still deserializes (defaults).
        let legacy = r#"{"ok":false,"service_ms":3.0,"cold_start":true}"#;
        let back: InvocationResult = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.error, None);
        assert_eq!(back.outcome(), OutcomeClass::AppError);

        // Failures carry their message and class.
        let t = InvocationResult::timeout("deadline exceeded");
        let back: InvocationResult =
            serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
        assert_eq!(back.error.as_deref(), Some("deadline exceeded"));
        assert_eq!(back.outcome(), OutcomeClass::Timeout);
    }
}

//! Property: the per-class outcome breakdown in [`RunMetrics`] is a true
//! partition of the error count, and completions plus errors account for
//! every recorded outcome — under any randomized sequence of outcomes,
//! including merged (multi-worker) metrics.

use faasrail_loadgen::{InvocationResult, RunMetrics};
use proptest::prelude::*;

/// One arbitrary invocation outcome.
fn arb_outcome() -> impl Strategy<Value = InvocationResult> {
    prop_oneof![
        (0.0f64..1_000.0, any::<bool>()).prop_map(|(ms, cold)| InvocationResult::success(ms, cold)),
        (0.0f64..1_000.0).prop_map(|ms| InvocationResult::app_error(ms, "app failed")),
        Just(InvocationResult::timeout("deadline exceeded")),
        Just(InvocationResult::transport("connection reset")),
        Just(InvocationResult::shed("circuit breaker open")),
    ]
}

fn classes_partition_errors(m: &RunMetrics) {
    assert_eq!(
        m.app_errors + m.timeouts + m.transport_errors + m.shed,
        m.errors,
        "breakdown: {}",
        m.outcome_breakdown()
    );
}

proptest! {
    #[test]
    fn outcome_classes_partition_errors(outcomes in prop::collection::vec(arb_outcome(), 0..200)) {
        let mut m = RunMetrics::new();
        for r in &outcomes {
            m.record_issued(0);
            m.record_outcome(r);
        }
        classes_partition_errors(&m);
        prop_assert_eq!(m.completed + m.errors, m.issued);
        prop_assert_eq!(m.issued as usize, outcomes.len());
    }

    #[test]
    fn merge_preserves_the_partition(
        a in prop::collection::vec(arb_outcome(), 0..100),
        b in prop::collection::vec(arb_outcome(), 0..100),
    ) {
        // Per-worker metrics merged into one, as replay() does.
        let mut ma = RunMetrics::new();
        for r in &a {
            ma.record_issued(0);
            ma.record_outcome(r);
        }
        let mut mb = RunMetrics::new();
        for r in &b {
            mb.record_issued(0);
            mb.record_outcome(r);
        }
        let mut merged = RunMetrics::new();
        merged.merge(&ma);
        merged.merge(&mb);
        classes_partition_errors(&merged);
        prop_assert_eq!(merged.completed + merged.errors, merged.issued);
        prop_assert_eq!(merged.issued as usize, a.len() + b.len());
    }
}

//! A coarse timer wheel for per-connection deadlines.
//!
//! Tens of thousands of connections each carry an idle/read deadline; the
//! wheel answers "who is overdue?" in O(slots advanced), not O(connections).
//! Entries are *hints*, not authorities: the owner re-checks the real
//! deadline when an entry fires and re-arms if it moved — so refreshing a
//! deadline is free (no cancellation, no re-insert) and each connection
//! keeps at most one live entry.

use std::time::{Duration, Instant};

const SLOT_MS: u64 = 16;
const SLOTS: usize = 256; // one rotation covers ~4s; longer deadlines re-queue

#[derive(Clone, Copy, Debug)]
struct Entry {
    token: u64,
    due_tick: u64,
}

/// A hashed timer wheel keyed by opaque `u64` tokens.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    /// Next tick to drain (inclusive).
    cursor_tick: u64,
    epoch: Instant,
    len: usize,
}

impl TimerWheel {
    pub fn new(epoch: Instant) -> TimerWheel {
        TimerWheel { slots: vec![Vec::new(); SLOTS], cursor_tick: 0, epoch, len: 0 }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let ms = at.saturating_duration_since(self.epoch).as_millis() as u64;
        ms / SLOT_MS
    }

    /// Number of armed entries (including stale ones not yet swept).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arm `token` to fire at `deadline`. Deadlines in the past fire on the
    /// next [`TimerWheel::advance`].
    pub fn insert(&mut self, token: u64, deadline: Instant) {
        let due_tick = self.tick_of(deadline).max(self.cursor_tick);
        let slot = (due_tick % SLOTS as u64) as usize;
        self.slots[slot].push(Entry { token, due_tick });
        self.len += 1;
    }

    /// How long until the earliest armed entry could fire; `None` when empty.
    /// A coarse bound (slot granularity), intended as an epoll_wait timeout.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let now_tick = self.tick_of(now);
        let mut best: Option<u64> = None;
        for slot in &self.slots {
            for e in slot {
                best = Some(best.map_or(e.due_tick, |b: u64| b.min(e.due_tick)));
            }
        }
        let due = best?;
        if due <= now_tick {
            return Some(Duration::ZERO);
        }
        Some(Duration::from_millis((due - now_tick) * SLOT_MS))
    }

    /// Drain every entry due at or before `now` into `fired`; keep the rest.
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<u64>) {
        let now_tick = self.tick_of(now);
        if self.len == 0 {
            self.cursor_tick = now_tick + 1;
            return;
        }
        // Visit each slot at most once per call even if the wheel lagged
        // several rotations behind.
        let span = (now_tick.saturating_sub(self.cursor_tick) + 1).min(SLOTS as u64);
        let mut keep: Vec<Entry> = Vec::new();
        for i in 0..span {
            let tick = self.cursor_tick + i;
            let slot = (tick % SLOTS as u64) as usize;
            if self.slots[slot].is_empty() {
                continue;
            }
            keep.clear();
            for e in self.slots[slot].drain(..) {
                if e.due_tick <= now_tick {
                    fired.push(e.token);
                    self.len -= 1;
                } else {
                    keep.push(e);
                }
            }
            self.slots[slot].append(&mut keep);
        }
        self.cursor_tick = now_tick + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_and_after_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.insert(1, t0 + Duration::from_millis(100));
        wheel.insert(2, t0 + Duration::from_millis(500));
        let mut fired = Vec::new();

        wheel.advance(t0 + Duration::from_millis(50), &mut fired);
        assert!(fired.is_empty(), "nothing due yet");

        wheel.advance(t0 + Duration::from_millis(130), &mut fired);
        assert_eq!(fired, vec![1]);
        assert_eq!(wheel.len(), 1);

        fired.clear();
        wheel.advance(t0 + Duration::from_millis(600), &mut fired);
        assert_eq!(fired, vec![2]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.insert(9, t0); // already due
        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(SLOT_MS), &mut fired);
        assert_eq!(fired, vec![9]);
    }

    #[test]
    fn deadlines_beyond_one_rotation_survive() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        let far = Duration::from_millis(SLOT_MS * SLOTS as u64 * 3 + 40);
        wheel.insert(7, t0 + far);
        let mut fired = Vec::new();
        // Sweep in coarse steps across several rotations; the entry must not
        // fire early even though its slot index is revisited.
        let mut now = t0;
        loop {
            let next = now + Duration::from_millis(SLOT_MS * 64);
            if next >= t0 + far - Duration::from_millis(SLOT_MS) {
                break;
            }
            now = next;
            wheel.advance(now, &mut fired);
            assert!(fired.is_empty(), "fired early at {:?}", now - t0);
        }
        wheel.advance(t0 + far + Duration::from_millis(SLOT_MS * 2), &mut fired);
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn next_timeout_bounds_the_earliest_entry() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        assert_eq!(wheel.next_timeout(t0), None);
        wheel.insert(1, t0 + Duration::from_millis(400));
        let hint = wheel.next_timeout(t0).unwrap();
        assert!(hint <= Duration::from_millis(400));
        assert!(hint >= Duration::from_millis(400 - 2 * SLOT_MS));
        // Overdue entries yield a zero timeout.
        wheel.insert(2, t0);
        assert_eq!(wheel.next_timeout(t0 + Duration::from_millis(50)).unwrap(), Duration::ZERO);
    }
}

//! # faasrail-reactor
//!
//! A dependency-free Linux epoll event loop: the substrate under the
//! gateway's `--reactor` server mode and the multiplexed HTTP client.
//!
//! The crate is deliberately small and policy-free. It provides exactly
//! four building blocks and leaves protocol state machines to its users:
//!
//! * [`poll::Poller`] — an owned epoll instance with `u64`-token
//!   registration and edge-triggered readiness ([`poll::Interest::EDGE_RW`]
//!   registers a connection once for its whole life; no per-request
//!   `epoll_ctl` churn).
//! * [`sys::Waker`] — an `eventfd`-based cross-thread wake-up, so handler
//!   threads can nudge a parked event loop.
//! * [`wheel::TimerWheel`] — a coarse hashed wheel for per-connection
//!   idle/read deadlines; entries are lazily re-validated hints, so
//!   refreshing a deadline costs nothing.
//! * [`buf::ReadBuf`] / [`buf::WriteBuf`] + [`http1`] — reusable
//!   connection buffers and an incremental HTTP/1.1 head parser/encoder
//!   that work in byte ranges, keeping per-request allocation off the hot
//!   path.
//!
//! No `libc`, `mio`, or `tokio`: the syscall surface is a dozen
//! hand-declared prototypes in [`sys`], which keeps the crate auditable
//! and the workspace dependency-free. Linux-only by construction (epoll,
//! `eventfd`, `accept4`, `SO_REUSEPORT`).

pub mod buf;
pub mod http1;
pub mod poll;
pub mod sys;
pub mod wheel;

pub use buf::{ReadBuf, WriteBuf};
pub use poll::{Event, Interest, Poller};
pub use sys::{bind_listeners, Listener, Waker};
pub use wheel::TimerWheel;

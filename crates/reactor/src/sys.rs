//! Thin FFI over the handful of Linux syscalls the reactor needs.
//!
//! The workspace deliberately has no `libc`/`mio`/`tokio` dependency, so the
//! half-dozen symbols (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd`, `accept4`, plus raw socket setup for `SO_REUSEPORT`
//! listeners) are declared here directly — they live in the C library every
//! Linux Rust binary already links. Everything above this module works in
//! terms of `std` types (`TcpStream`, `io::Error`).

use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};

// epoll event bits (uapi/linux/eventpoll.h).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered: readiness is reported on transitions only, so the
/// consumer must drain to `WouldBlock` on every wake-up.
pub const EPOLLET: u32 = 0x8000_0000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_REUSEPORT: c_int = 15;

/// `struct epoll_event`. Packed on x86-64 (the kernel ABI), natural layout
/// elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

/// IPv4 `struct sockaddr_in` (port and address in network byte order).
#[repr(C)]
#[derive(Clone, Copy)]
struct SockaddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn bind(fd: c_int, addr: *const SockaddrIn, len: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn getsockname(fd: c_int, addr: *mut SockaddrIn, len: *mut u32) -> c_int;
    fn accept4(fd: c_int, addr: *mut c_void, len: *mut u32, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

pub fn epoll_create() -> io::Result<RawFd> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

fn epoll_op(epfd: RawFd, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data: token };
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_op(epfd, EPOLL_CTL_ADD, fd, events, token)
}

pub fn epoll_modify(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_op(epfd, EPOLL_CTL_MOD, fd, events, token)
}

pub fn epoll_delete(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    epoll_op(epfd, EPOLL_CTL_DEL, fd, 0, 0)
}

/// Wait for events; `timeout_ms < 0` blocks indefinitely. Retries `EINTR`.
pub fn epoll_wait_into(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    loop {
        let n = unsafe {
            epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms as c_int)
        };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

pub fn close_fd(fd: RawFd) {
    unsafe {
        close(fd);
    }
}

/// A cross-thread wake-up for an epoll loop: an `eventfd` registered in the
/// poller. `wake` is async-signal-safe and cheap; `drain` resets it.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        Ok(Waker { fd: cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })? })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Make the owning loop's next (or current) `epoll_wait` return.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Consume pending wake-ups so the level resets.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            read(self.fd, (&mut buf as *mut u64).cast(), 8);
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

fn to_v4(addr: SocketAddr) -> io::Result<SocketAddrV4> {
    match addr {
        SocketAddr::V4(v4) => Ok(v4),
        SocketAddr::V6(_) => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "sharded reactor listeners support IPv4 only",
        )),
    }
}

fn sockaddr_in(addr: SocketAddrV4) -> SockaddrIn {
    SockaddrIn {
        sin_family: AF_INET as u16,
        sin_port: addr.port().to_be(),
        sin_addr: u32::from_be_bytes(addr.ip().octets()).to_be(),
        sin_zero: [0; 8],
    }
}

/// A nonblocking listening socket: either a `std` listener (single shard,
/// any address family) or a raw `SO_REUSEPORT` socket (sharded accept,
/// IPv4).
#[derive(Debug)]
pub enum Listener {
    Std(TcpListener),
    Raw(RawFd),
}

impl Listener {
    pub fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Std(l) => l.as_raw_fd(),
            Listener::Raw(fd) => *fd,
        }
    }

    /// Accept one connection; `None` when the backlog is drained. The
    /// returned stream is already nonblocking.
    pub fn accept(&self) -> io::Result<Option<TcpStream>> {
        match self {
            Listener::Std(l) => match l.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(true)?;
                    Ok(Some(stream))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Raw(fd) => {
                let ret = unsafe {
                    accept4(
                        *fd,
                        std::ptr::null_mut(),
                        std::ptr::null_mut(),
                        SOCK_NONBLOCK | SOCK_CLOEXEC,
                    )
                };
                if ret >= 0 {
                    return Ok(Some(unsafe { TcpStream::from_raw_fd(ret) }));
                }
                let e = io::Error::last_os_error();
                match e.kind() {
                    io::ErrorKind::WouldBlock
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::Interrupted => Ok(None),
                    _ => Err(e),
                }
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Raw(fd) = self {
            close_fd(*fd);
        }
    }
}

fn reuseport_listener(addr: SocketAddrV4, backlog: i32) -> io::Result<(RawFd, SocketAddrV4)> {
    let fd = cvt(unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    let enable = |opt: c_int| -> io::Result<()> {
        let one: c_int = 1;
        cvt(unsafe { setsockopt(fd, SOL_SOCKET, opt, (&one as *const c_int).cast(), 4) })
            .map(|_| ())
    };
    let setup = || -> io::Result<SocketAddrV4> {
        enable(SO_REUSEADDR)?;
        enable(SO_REUSEPORT)?;
        let sa = sockaddr_in(addr);
        cvt(unsafe { bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) })?;
        cvt(unsafe { listen(fd, backlog) })?;
        let mut out = sockaddr_in(addr);
        let mut len = std::mem::size_of::<SockaddrIn>() as u32;
        cvt(unsafe { getsockname(fd, &mut out, &mut len) })?;
        Ok(SocketAddrV4::new(
            Ipv4Addr::from(u32::from_be(out.sin_addr).to_be_bytes()),
            u16::from_be(out.sin_port),
        ))
    };
    match setup() {
        Ok(bound) => Ok((fd, bound)),
        Err(e) => {
            close_fd(fd);
            Err(e)
        }
    }
}

/// Bind `n` listeners on `addr`. One shard uses a plain `std` listener;
/// several use `SO_REUSEPORT` sockets (IPv4 only) so the kernel spreads
/// accepts across the shards with no hand-off thread.
pub fn bind_listeners(addr: SocketAddr, n: usize) -> io::Result<(Vec<Listener>, SocketAddr)> {
    assert!(n > 0, "need at least one listener");
    if n == 1 {
        let l = TcpListener::bind(addr)?;
        l.set_nonblocking(true)?;
        let bound = l.local_addr()?;
        return Ok((vec![Listener::Std(l)], bound));
    }
    let v4 = to_v4(addr)?;
    let (first, bound) = reuseport_listener(v4, 1024)?;
    let mut out = vec![Listener::Raw(first)];
    for _ in 1..n {
        match reuseport_listener(bound, 1024) {
            Ok((fd, _)) => out.push(Listener::Raw(fd)),
            Err(e) => return Err(e), // `out` drops and closes what bound
        }
    }
    Ok((out, SocketAddr::V4(bound)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn waker_wakes_an_epoll_wait() {
        let ep = epoll_create().unwrap();
        let waker = Waker::new().unwrap();
        epoll_add(ep, waker.fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::default(); 4];
        // Nothing pending: times out empty.
        assert_eq!(epoll_wait_into(ep, &mut events, 0).unwrap(), 0);
        waker.wake();
        let n = epoll_wait_into(ep, &mut events, 1_000).unwrap();
        assert_eq!(n, 1);
        let data = { events[0].data }; // copy out of the packed struct
        assert_eq!(data, 7);
        waker.drain();
        assert_eq!(epoll_wait_into(ep, &mut events, 0).unwrap(), 0, "drain resets the level");
        close_fd(ep);
    }

    #[test]
    fn sharded_listeners_share_one_port_and_accept() {
        let (listeners, addr) = bind_listeners("127.0.0.1:0".parse().unwrap(), 2).unwrap();
        assert_eq!(listeners.len(), 2);
        assert_ne!(addr.port(), 0, "ephemeral port resolved");
        // Drive enough connections that both shards plausibly see some; we
        // only assert every connection lands on *some* listener.
        let mut served = 0;
        for i in 0..8u8 {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&[i]).unwrap();
            // The backlog holds the connection until a listener accepts it.
            for l in &listeners {
                while let Some(mut s) = l.accept().unwrap() {
                    let mut b = [0u8; 1];
                    s.set_nonblocking(false).unwrap();
                    s.read_exact(&mut b).unwrap();
                    served += 1;
                }
            }
        }
        assert_eq!(served, 8, "every connection accepted by exactly one listener");
    }

    #[test]
    fn single_listener_uses_std_and_reports_wouldblock_as_none() {
        let (listeners, addr) = bind_listeners("127.0.0.1:0".parse().unwrap(), 1).unwrap();
        assert!(matches!(listeners[0], Listener::Std(_)));
        assert!(listeners[0].accept().unwrap().is_none(), "empty backlog is None");
        let _c = TcpStream::connect(addr).unwrap();
        // The connection may take a beat to land in the backlog.
        let mut got = false;
        for _ in 0..100 {
            if listeners[0].accept().unwrap().is_some() {
                got = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(got);
    }
}

//! Reusable per-connection byte buffers.
//!
//! A connection keeps one [`ReadBuf`] and one [`WriteBuf`] for its whole
//! life. Both grow once to their steady-state size and are then recycled
//! request after request: consuming advances a start cursor, and compaction
//! memmoves the (typically empty or tiny) tail back to the front instead of
//! allocating. This is what keeps the HTTP parse/encode hot path free of
//! per-request `String`/`Vec` allocation.

use std::io::{self, Read, Write};

/// Read-side accumulator: bytes arrive at the tail, the parser consumes
/// from the head.
#[derive(Debug, Default)]
pub struct ReadBuf {
    data: Vec<u8>,
    start: usize,
}

impl ReadBuf {
    pub fn with_capacity(cap: usize) -> ReadBuf {
        ReadBuf { data: Vec::with_capacity(cap), start: 0 }
    }

    /// Unconsumed bytes.
    pub fn filled(&self) -> &[u8] {
        &self.data[self.start..]
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop `n` bytes from the front (they have been parsed).
    pub fn consume(&mut self, n: usize) {
        self.start = (self.start + n).min(self.data.len());
        if self.start == self.data.len() {
            // Everything consumed: reset in place, keep the allocation.
            self.data.clear();
            self.start = 0;
        }
    }

    /// Move the unconsumed tail to the front so the buffer does not creep.
    fn compact(&mut self) {
        if self.start > 0 {
            self.data.copy_within(self.start.., 0);
            self.data.truncate(self.data.len() - self.start);
            self.start = 0;
        }
    }

    /// Read once from `src` into the tail. `Ok(0)` is end-of-stream;
    /// `WouldBlock` bubbles up untouched for the edge-triggered drain loop.
    pub fn fill_from<R: Read>(&mut self, src: &mut R, chunk: usize) -> io::Result<usize> {
        // Compact lazily, only when a fresh read needs the space.
        if self.start > 0 && self.data.len() + chunk > self.data.capacity() {
            self.compact();
        }
        let old = self.data.len();
        self.data.resize(old + chunk, 0);
        match src.read(&mut self.data[old..]) {
            Ok(n) => {
                self.data.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.data.truncate(old);
                Err(e)
            }
        }
    }
}

/// Write-side staging buffer: responses are encoded into the tail, the
/// socket drains from the head. Implements [`io::Write`] so encoders
/// (header formatting, `serde_json::to_writer`) append without allocating
/// intermediates.
#[derive(Debug, Default)]
pub struct WriteBuf {
    data: Vec<u8>,
    start: usize,
    staged_total: u64,
}

impl WriteBuf {
    pub fn with_capacity(cap: usize) -> WriteBuf {
        WriteBuf { data: Vec::with_capacity(cap), start: 0, staged_total: 0 }
    }

    /// Bytes staged but not yet written to the socket.
    pub fn pending(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Total bytes ever accepted into the buffer (monotonic). Used to
    /// address "this response ends at byte N of the connection".
    pub fn bytes_staged(&self) -> u64 {
        self.staged_total
    }

    /// Write staged bytes to `dst` until drained or `WouldBlock`.
    /// Returns the number of bytes flushed this call.
    pub fn flush_to<W: Write>(&mut self, dst: &mut W) -> io::Result<usize> {
        let mut flushed = 0;
        while self.start < self.data.len() {
            match dst.write(&self.data[self.start..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.start += n;
                    flushed += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        }
        Ok(flushed)
    }
}

impl Write for WriteBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.data.extend_from_slice(buf);
        self.staged_total += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_buf_consume_and_recycle_keeps_capacity() {
        let mut rb = ReadBuf::with_capacity(64);
        let mut src: &[u8] = b"GET / HTTP/1.1\r\n\r\n";
        rb.fill_from(&mut src, 64).unwrap();
        assert_eq!(rb.filled(), b"GET / HTTP/1.1\r\n\r\n");
        let cap = rb.data.capacity();
        rb.consume(rb.len());
        assert!(rb.is_empty());
        assert_eq!(rb.data.capacity(), cap, "full consume recycles in place");
    }

    #[test]
    fn read_buf_partial_consume_then_compaction() {
        let mut rb = ReadBuf::with_capacity(8);
        let mut src: &[u8] = b"abcdef";
        rb.fill_from(&mut src, 6).unwrap();
        rb.consume(4);
        assert_eq!(rb.filled(), b"ef");
        // Next fill needs room beyond capacity → compacts first.
        let mut src2: &[u8] = b"ghijkl";
        rb.fill_from(&mut src2, 6).unwrap();
        assert_eq!(rb.filled(), b"efghijkl");
        assert_eq!(rb.start, 0, "compacted");
    }

    #[test]
    fn write_buf_partial_flush_resumes() {
        struct Throttle<'a>(&'a mut Vec<u8>, usize);
        impl Write for Throttle<'_> {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.1 == 0 {
                    return Err(io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(self.1);
                self.1 -= n;
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut wb = WriteBuf::with_capacity(32);
        wb.write_all(b"hello world").unwrap();
        assert_eq!(wb.bytes_staged(), 11);

        let mut out = Vec::new();
        let n = wb.flush_to(&mut Throttle(&mut out, 5)).unwrap();
        assert_eq!(n, 5);
        assert_eq!(wb.pending(), 6);

        let n = wb.flush_to(&mut Throttle(&mut out, 100)).unwrap();
        assert_eq!(n, 6);
        assert!(wb.is_empty());
        assert_eq!(out, b"hello world");
        // Monotonic staged counter survives the drain.
        wb.write_all(b"!").unwrap();
        assert_eq!(wb.bytes_staged(), 12);
    }
}

//! A minimal epoll poller: register file descriptors under a `u64` token,
//! collect readiness events into a reusable buffer.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::sys;

pub use crate::sys::{EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Interest flags for [`Poller::add`] / [`Poller::modify`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    bits: u32,
}

impl Interest {
    pub const READ: Interest = Interest { bits: EPOLLIN };
    pub const WRITE: Interest = Interest { bits: EPOLLOUT };
    /// Read + write + peer-half-close, edge-triggered. The standard
    /// register-once mode for connection sockets: no `epoll_ctl` churn per
    /// request, at the cost of having to drain to `WouldBlock`.
    pub const EDGE_RW: Interest = Interest { bits: EPOLLIN | EPOLLOUT | EPOLLRDHUP | sys::EPOLLET };

    pub fn bits(self) -> u32 {
        self.bits
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    bits: u32,
}

impl Event {
    pub fn readable(&self) -> bool {
        self.bits & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0
    }

    pub fn writable(&self) -> bool {
        self.bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    pub fn error(&self) -> bool {
        self.bits & EPOLLERR != 0
    }

    /// Peer closed its write half (or the whole connection).
    pub fn read_closed(&self) -> bool {
        self.bits & (EPOLLRDHUP | EPOLLHUP) != 0
    }
}

/// Owning wrapper around an epoll instance.
pub struct Poller {
    epfd: RawFd,
    events: Vec<sys::EpollEvent>,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { epfd: sys::epoll_create()?, events: vec![sys::EpollEvent::default(); 1024] })
    }

    pub fn add(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        sys::epoll_add(self.epfd, fd, interest.bits(), token)
    }

    pub fn modify(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        sys::epoll_modify(self.epfd, fd, interest.bits(), token)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_delete(self.epfd, fd)
    }

    /// Block for up to `timeout` (`None` = forever) and append readiness
    /// events to `out`. Returns the number of events delivered.
    pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1i32,
            Some(t) => {
                // Round up so a 0 < t < 1ms deadline blocks instead of spinning.
                let ms = t.as_millis() + u128::from(t.subsec_nanos() % 1_000_000 != 0);
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        let n = sys::epoll_wait_into(self.epfd, &mut self.events, timeout_ms)?;
        for ev in &self.events[..n] {
            // Copy out of the possibly-packed struct before use.
            let (data, bits) = (ev.data, ev.events);
            out.push(Event { token: data, bits });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::Waker;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn edge_triggered_socket_reports_once_per_burst() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        use std::os::unix::io::AsRawFd;
        poller.add(server.as_raw_fd(), Interest::EDGE_RW, 42).unwrap();

        // Fresh ET registration reports writability immediately.
        let mut events = Vec::new();
        poller.wait(Some(Duration::from_millis(500)), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.writable()));

        client.write_all(b"hello").unwrap();
        events.clear();
        poller.wait(Some(Duration::from_millis(500)), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable()));

        // Without draining the socket, an edge-triggered fd stays silent.
        events.clear();
        poller.wait(Some(Duration::from_millis(50)), &mut events).unwrap();
        assert!(
            !events.iter().any(|e| e.token == 42 && e.readable()),
            "no second edge without new bytes"
        );
    }

    #[test]
    fn waker_event_carries_its_token() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), Interest::READ, u64::MAX).unwrap();
        waker.wake();
        let mut events = Vec::new();
        poller.wait(Some(Duration::from_millis(500)), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == u64::MAX && e.readable()));
    }
}

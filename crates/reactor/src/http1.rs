//! Incremental, zero-allocation HTTP/1.1 head parsing and encoding.
//!
//! Unlike a `BufRead`-based parser, these functions operate on the bytes a
//! [`crate::buf::ReadBuf`] has accumulated so far and either return a parsed
//! head (as byte *ranges* into the buffer — nothing is copied), report that
//! more bytes are needed, or reject the input. Encoding writes straight
//! into an [`io::Write`] sink (a [`crate::buf::WriteBuf`] in practice) with
//! integers formatted on the stack, so neither direction allocates on the
//! per-request hot path.
//!
//! The dialect is intentionally the same subset the blocking gateway
//! speaks: `Content-Length` framing only, `Connection` keep-alive
//! negotiation with HTTP/1.0 defaulting to close, and opaque tolerance for
//! unknown headers.

use std::io::{self, Write};
use std::ops::Range;

/// Why a head failed to parse. `TooLarge` is split out so servers can
/// choose a distinct status for oversized heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Bad request line, bad header syntax, or an unsupported version.
    Malformed,
    /// The head exceeded the caller's size budget before terminating.
    TooLarge,
    /// `Content-Length` present but not a decimal integer.
    BadContentLength,
}

/// A parsed request head. All ranges index into the buffer passed to
/// [`parse_request`]; `head_len` bytes (through the blank line) precede the
/// body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqHead {
    pub head_len: usize,
    pub method: Range<usize>,
    pub path: Range<usize>,
    pub content_length: usize,
    pub keep_alive: bool,
    /// Value bytes of an `X-FaaSRail-Trace` header, when present.
    pub trace: Option<Range<usize>>,
}

impl ReqHead {
    /// Total bytes this request occupies in the buffer (head + body).
    pub fn total_len(&self) -> usize {
        self.head_len + self.content_length
    }

    pub fn body_range(&self) -> Range<usize> {
        self.head_len..self.total_len()
    }
}

/// A parsed response head (client side of the protocol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RespHead {
    pub head_len: usize,
    pub status: u16,
    pub content_length: usize,
    pub keep_alive: bool,
    /// `Retry-After` in whole seconds (delta-seconds form only).
    pub retry_after: Option<u64>,
}

impl RespHead {
    pub fn total_len(&self) -> usize {
        self.head_len + self.content_length
    }

    pub fn body_range(&self) -> Range<usize> {
        self.head_len..self.total_len()
    }
}

/// Locate the end of the head: the byte offset just past the blank line.
/// Lines are `\n`-terminated with an optional `\r`.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0;
    while let Some(nl) = memchr(b'\n', &buf[line_start..]) {
        let line_end = line_start + nl;
        let line = trim_cr(&buf[line_start..line_end]);
        if line.is_empty() && line_start > 0 {
            return Some(line_end + 1);
        }
        line_start = line_end + 1;
    }
    None
}

fn memchr(needle: u8, haystack: &[u8]) -> Option<usize> {
    haystack.iter().position(|&b| b == needle)
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line.split_last() {
        Some((b'\r', rest)) => rest,
        _ => line,
    }
}

fn trim_ascii(mut s: &[u8]) -> &[u8] {
    while let [b' ' | b'\t', rest @ ..] = s {
        s = rest;
    }
    while let [rest @ .., b' ' | b'\t'] = s {
        s = rest;
    }
    s
}

fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_ascii_lowercase() == *y)
}

fn contains_token(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.len() > haystack.len() {
        return false;
    }
    (0..=haystack.len() - needle.len())
        .any(|i| eq_ignore_case(&haystack[i..i + needle.len()], needle))
}

fn parse_usize(s: &[u8]) -> Option<usize> {
    if s.is_empty() || s.len() > 19 {
        return None;
    }
    let mut n: usize = 0;
    for &b in s {
        if !b.is_ascii_digit() {
            return None;
        }
        n = n.checked_mul(10)?.checked_add((b - b'0') as usize)?;
    }
    Some(n)
}

/// Shared header fields both directions care about.
struct HeaderInfo {
    content_length: usize,
    keep_alive: bool,
    retry_after: Option<u64>,
    trace: Option<Range<usize>>,
}

fn parse_headers(
    buf: &[u8],
    mut line_start: usize,
    head_end: usize,
    version_keep_alive: bool,
) -> Result<HeaderInfo, ParseError> {
    let mut info = HeaderInfo {
        content_length: 0,
        keep_alive: version_keep_alive,
        retry_after: None,
        trace: None,
    };
    while line_start < head_end {
        let nl = memchr(b'\n', &buf[line_start..head_end]).ok_or(ParseError::Malformed)?;
        let line_end = line_start + nl;
        let line = trim_cr(&buf[line_start..line_end]);
        if line.is_empty() {
            return Ok(info);
        }
        let colon = memchr(b':', line).ok_or(ParseError::Malformed)?;
        let name = trim_ascii(&line[..colon]);
        let value = trim_ascii(&line[colon + 1..]);
        if eq_ignore_case(name, b"content-length") {
            info.content_length = parse_usize(value).ok_or(ParseError::BadContentLength)?;
        } else if eq_ignore_case(name, b"connection") {
            if contains_token(value, b"close") {
                info.keep_alive = false;
            } else if contains_token(value, b"keep-alive") {
                info.keep_alive = true;
            }
        } else if eq_ignore_case(name, b"retry-after") {
            info.retry_after = parse_usize(value).map(|n| n as u64);
        } else if eq_ignore_case(name, b"x-faasrail-trace") {
            // Stored as a range; the caller decides how to decode it.
            let off = line_start + offset_of(line, value);
            info.trace = Some(off..off + value.len());
        }
        line_start = line_end + 1;
    }
    Err(ParseError::Malformed)
}

/// Byte offset of subslice `inner` within `outer` (both from the same
/// buffer; `trim_ascii` only shrinks, so containment is guaranteed).
fn offset_of(outer: &[u8], inner: &[u8]) -> usize {
    inner.as_ptr() as usize - outer.as_ptr() as usize
}

/// Try to parse one request head from `buf`.
///
/// * `Ok(Some(head))` — a complete head; the body may still be partial
///   (compare [`ReqHead::total_len`] with the bytes on hand).
/// * `Ok(None)` — incomplete; read more bytes.
/// * `Err(TooLarge)` — no terminator within `max_head` bytes.
pub fn parse_request(buf: &[u8], max_head: usize) -> Result<Option<ReqHead>, ParseError> {
    let head_end = match find_head_end(buf) {
        Some(end) if end <= max_head => end,
        Some(_) => return Err(ParseError::TooLarge),
        None if buf.len() > max_head => return Err(ParseError::TooLarge),
        None => return Ok(None),
    };
    // Request line.
    let nl = memchr(b'\n', buf).ok_or(ParseError::Malformed)?;
    let line = trim_cr(&buf[..nl]);
    let mut fields = line
        .split(|&b| b == b' ' || b == b'\t')
        .filter(|f| !f.is_empty())
        .map(|f| offset_of(line, f)..offset_of(line, f) + f.len());
    let (Some(method), Some(path), Some(version)) = (fields.next(), fields.next(), fields.next())
    else {
        return Err(ParseError::Malformed);
    };
    let version_bytes = &buf[version.clone()];
    if !version_bytes.starts_with(b"HTTP/1.") {
        return Err(ParseError::Malformed);
    }
    let version_keep_alive = version_bytes != b"HTTP/1.0";
    let info = parse_headers(buf, nl + 1, head_end, version_keep_alive)?;
    Ok(Some(ReqHead {
        head_len: head_end,
        method,
        path,
        content_length: info.content_length,
        keep_alive: info.keep_alive,
        trace: info.trace,
    }))
}

/// Try to parse one response head from `buf` (client side). Same contract
/// as [`parse_request`].
pub fn parse_response(buf: &[u8], max_head: usize) -> Result<Option<RespHead>, ParseError> {
    let head_end = match find_head_end(buf) {
        Some(end) if end <= max_head => end,
        Some(_) => return Err(ParseError::TooLarge),
        None if buf.len() > max_head => return Err(ParseError::TooLarge),
        None => return Ok(None),
    };
    let nl = memchr(b'\n', buf).ok_or(ParseError::Malformed)?;
    let line = trim_cr(&buf[..nl]);
    let mut fields = line.split(|&b| b == b' ' || b == b'\t').filter(|f| !f.is_empty());
    let (Some(version), Some(code)) = (fields.next(), fields.next()) else {
        return Err(ParseError::Malformed);
    };
    if !version.starts_with(b"HTTP/1.") {
        return Err(ParseError::Malformed);
    }
    let status =
        parse_usize(code).and_then(|n| u16::try_from(n).ok()).ok_or(ParseError::Malformed)?;
    let version_keep_alive = version != b"HTTP/1.0";
    let info = parse_headers(buf, nl + 1, head_end, version_keep_alive)?;
    Ok(Some(RespHead {
        head_len: head_end,
        status,
        content_length: info.content_length,
        keep_alive: info.keep_alive,
        retry_after: info.retry_after,
    }))
}

/// Write `n` in decimal without allocating.
pub fn write_decimal<W: Write>(w: &mut W, n: u64) -> io::Result<()> {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut n = n;
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    w.write_all(&digits[i..])
}

fn write_common_tail<W: Write>(
    w: &mut W,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    w.write_all(b"Content-Type: ")?;
    w.write_all(content_type.as_bytes())?;
    w.write_all(b"\r\nContent-Length: ")?;
    write_decimal(w, content_length as u64)?;
    w.write_all(b"\r\nConnection: ")?;
    w.write_all(if keep_alive { b"keep-alive".as_slice() } else { b"close".as_slice() })?;
    w.write_all(b"\r\n")?;
    for (name, value) in extra_headers {
        w.write_all(name.as_bytes())?;
        w.write_all(b": ")?;
        w.write_all(value.as_bytes())?;
        w.write_all(b"\r\n")?;
    }
    w.write_all(b"\r\n")
}

/// Encode a response head (status line + framing headers) into `w`.
/// The caller appends exactly `content_length` body bytes afterwards.
pub fn write_response_head<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    w.write_all(b"HTTP/1.1 ")?;
    write_decimal(w, u64::from(status))?;
    w.write_all(b" ")?;
    w.write_all(reason.as_bytes())?;
    w.write_all(b"\r\n")?;
    write_common_tail(w, content_type, content_length, keep_alive, extra_headers)
}

/// Encode a request head into `w`; the caller appends the body.
#[allow(clippy::too_many_arguments)]
pub fn write_request_head<W: Write>(
    w: &mut W,
    method: &str,
    path: &str,
    host: &str,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    w.write_all(method.as_bytes())?;
    w.write_all(b" ")?;
    w.write_all(path.as_bytes())?;
    w.write_all(b" HTTP/1.1\r\nHost: ")?;
    w.write_all(host.as_bytes())?;
    w.write_all(b"\r\n")?;
    write_common_tail(w, content_type, content_length, keep_alive, extra_headers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_request_parses_once_complete() {
        let raw = b"POST /invoke HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        // Every strict prefix of the head is "need more".
        for cut in 0..raw.len() - 6 {
            assert_eq!(parse_request(&raw[..cut], 16384), Ok(None), "cut={cut}");
        }
        let head = parse_request(raw, 16384).unwrap().unwrap();
        assert_eq!(&raw[head.method.clone()], b"POST");
        assert_eq!(&raw[head.path.clone()], b"/invoke");
        assert_eq!(head.content_length, 5);
        assert!(head.keep_alive);
        assert_eq!(&raw[head.body_range()], b"hello");
        assert_eq!(head.total_len(), raw.len());
    }

    #[test]
    fn connection_and_version_defaults_match_the_blocking_parser() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!parse_request(raw, 16384).unwrap().unwrap().keep_alive);
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        assert!(!parse_request(raw, 16384).unwrap().unwrap().keep_alive);
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        assert!(parse_request(raw, 16384).unwrap().unwrap().keep_alive);
    }

    #[test]
    fn malformed_inputs_are_rejected_not_deferred() {
        assert_eq!(parse_request(b"NOT-HTTP\r\n\r\n", 16384), Err(ParseError::Malformed));
        assert_eq!(parse_request(b"GET / SPDY/3\r\n\r\n", 16384), Err(ParseError::Malformed));
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n", 16384),
            Err(ParseError::Malformed)
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: lots\r\n\r\n", 16384),
            Err(ParseError::BadContentLength)
        );
    }

    #[test]
    fn oversized_head_is_too_large_with_and_without_terminator() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(vec![b'a'; 64]);
        // Unterminated and past budget.
        assert_eq!(parse_request(&raw, 32), Err(ParseError::TooLarge));
        // Terminated but past budget.
        raw.extend(b"\r\n\r\n");
        assert_eq!(parse_request(&raw, 32), Err(ParseError::TooLarge));
    }

    #[test]
    fn trace_header_range_and_pipelined_second_request() {
        let raw = b"POST /invoke HTTP/1.1\r\nX-FaaSRail-Trace: 00ff\r\nContent-Length: 3\r\n\r\n\
                    oneGET /stats HTTP/1.1\r\n\r\n";
        let a = parse_request(raw, 16384).unwrap().unwrap();
        assert_eq!(&raw[a.trace.clone().unwrap()], b"00ff");
        assert_eq!(&raw[a.body_range()], b"one");
        let rest = &raw[a.total_len()..];
        let b = parse_request(rest, 16384).unwrap().unwrap();
        assert_eq!(&rest[b.path.clone()], b"/stats");
        assert_eq!(b.content_length, 0);
    }

    #[test]
    fn response_head_roundtrips_through_the_encoder() {
        let mut buf = Vec::new();
        write_response_head(
            &mut buf,
            429,
            "Too Many Requests",
            "text/plain",
            4,
            false,
            &[("Retry-After", "1")],
        )
        .unwrap();
        buf.extend_from_slice(b"shed");
        let head = parse_response(&buf, 16384).unwrap().unwrap();
        assert_eq!(head.status, 429);
        assert_eq!(head.content_length, 4);
        assert!(!head.keep_alive);
        assert_eq!(head.retry_after, Some(1));
        assert_eq!(&buf[head.body_range()], b"shed");
    }

    #[test]
    fn request_head_encoder_is_parseable_by_the_request_parser() {
        let mut buf = Vec::new();
        write_request_head(
            &mut buf,
            "POST",
            "/invoke",
            "h:1",
            "application/json",
            2,
            true,
            &[("X-FaaSRail-Trace", "deadbeef")],
        )
        .unwrap();
        buf.extend_from_slice(b"{}");
        let head = parse_request(&buf, 16384).unwrap().unwrap();
        assert_eq!(&buf[head.method.clone()], b"POST");
        assert_eq!(&buf[head.trace.clone().unwrap()], b"deadbeef");
        assert_eq!(&buf[head.body_range()], b"{}");
        assert!(head.keep_alive);
    }

    #[test]
    fn write_decimal_covers_edge_values() {
        for n in [0u64, 7, 10, 999, 10_000, u64::MAX] {
            let mut out = Vec::new();
            write_decimal(&mut out, n).unwrap();
            assert_eq!(String::from_utf8(out).unwrap(), n.to_string());
        }
    }
}

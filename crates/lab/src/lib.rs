//! faasrail-lab — a parallel experiment runner over the discrete-event
//! simulator.
//!
//! The simulator answers one question per run: *given this arrival
//! schedule, how does one (keep-alive policy, load balancer, seed) cell
//! behave?* Research questions need the whole grid. This crate runs the
//! grid: it takes a compact [`ScheduleModel`] (O(functions) memory, lazily
//! expanded into arrivals per cell — never materialized), fans the cells
//! out over a fixed-size worker pool, and merges the per-cell
//! [`SimMetrics`](faasrail_faas_sim::SimMetrics) into one deterministic
//! [`LabReport`].
//!
//! Determinism is a hard contract: the report depends only on the model,
//! the grid, and the cluster shape — **not** on thread interleaving or
//! wall-clock time. `run_lab` with `parallel = 1` and `parallel = N`
//! produce byte-identical JSON. Wall-clock measurements (throughput, peak
//! RSS) live in the separate [`LabRunStats`] / [`BenchRecord`] so the
//! report itself stays reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use faasrail_core::{ArrivalStream, ScheduleModel};
use faasrail_faas_sim::{BalancerKind, ClusterConfig, PolicyKind, SimOptions};
use faasrail_workloads::WorkloadPool;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Grid definition
// ---------------------------------------------------------------------------

/// What to run: the experiment grid and the cluster every cell runs on.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Human label for the schedule ("small", "paper", "custom", ...).
    pub scale: String,
    pub policies: Vec<PolicyKind>,
    pub balancers: Vec<BalancerKind>,
    pub seeds: Vec<u64>,
    pub cluster: ClusterConfig,
    /// Worker threads. `0` means one per available core.
    pub parallel: usize,
    /// Log-normal sigma for service-time jitter (0 = deterministic).
    pub service_jitter_sigma: f64,
}

impl LabConfig {
    /// A small default grid: every policy × warm-first × one seed.
    pub fn new(scale: &str) -> LabConfig {
        LabConfig {
            scale: scale.to_string(),
            policies: PolicyKind::ALL.to_vec(),
            balancers: vec![BalancerKind::WarmFirst],
            seeds: vec![42],
            cluster: ClusterConfig::default(),
            parallel: 0,
            service_jitter_sigma: 0.0,
        }
    }

    /// The grid in canonical order: policy-major, then balancer, then seed.
    /// Cell index is the position in this order — stable across runs and
    /// parallelism levels, and the order cells appear in the report.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out =
            Vec::with_capacity(self.policies.len() * self.balancers.len() * self.seeds.len());
        for &policy in &self.policies {
            for &balancer in &self.balancers {
                for &seed in &self.seeds {
                    out.push(CellSpec { index: out.len(), policy, balancer, seed });
                }
            }
        }
        out
    }

    fn workers(&self, cells: usize) -> usize {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let requested = if self.parallel == 0 { hw } else { self.parallel };
        requested.clamp(1, cells.max(1))
    }
}

/// One cell of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    pub index: usize,
    pub policy: PolicyKind,
    pub balancer: BalancerKind,
    pub seed: u64,
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// The per-cell slice of the report: the cell's coordinates plus the
/// simulator metrics research cares about (§2.2 of the paper: cold starts,
/// wasted warm memory, response latency, utilization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    pub policy: String,
    pub balancer: String,
    pub seed: u64,
    pub arrivals: u64,
    pub completions: u64,
    pub starved: u64,
    pub cold_starts: u64,
    pub warm_starts: u64,
    pub evictions: u64,
    pub expirations: u64,
    pub max_queue: u64,
    /// Discrete events the engine processed for this cell.
    pub sim_events: u64,
    /// cold / (cold + warm); 0 when nothing started.
    pub cold_start_rate: f64,
    /// Average memory held by idle warm sandboxes, MiB.
    pub mean_idle_memory_mb: f64,
    /// Mean core utilization over the run.
    pub utilization: f64,
    pub p50_response_ms: f64,
    pub p99_response_ms: f64,
}

fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

impl CellResult {
    fn from_metrics(spec: &CellSpec, m: &faasrail_faas_sim::SimMetrics) -> CellResult {
        CellResult {
            policy: spec.policy.name().to_string(),
            balancer: spec.balancer.name().to_string(),
            seed: spec.seed,
            arrivals: m.arrivals,
            completions: m.completions,
            starved: m.starved,
            cold_starts: m.cold_starts,
            warm_starts: m.warm_starts,
            evictions: m.evictions,
            expirations: m.expirations,
            max_queue: m.max_queue,
            sim_events: m.sim_events,
            cold_start_rate: finite(m.cold_start_fraction()),
            mean_idle_memory_mb: finite(m.mean_idle_memory_mb()),
            utilization: finite(m.utilization()),
            p50_response_ms: finite(m.response.quantile(0.5) * 1_000.0),
            p99_response_ms: finite(m.response.quantile(0.99) * 1_000.0),
        }
    }
}

/// Per-(policy, balancer) averages over seeds — the row a paper table or
/// plot point is made of.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateRow {
    pub policy: String,
    pub balancer: String,
    pub seeds: u64,
    pub mean_cold_start_rate: f64,
    pub mean_idle_memory_mb: f64,
    pub mean_utilization: f64,
    pub mean_p99_response_ms: f64,
    pub total_starved: u64,
}

/// The cluster shape every cell ran on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSummary {
    pub nodes: usize,
    pub cores_per_node: usize,
    pub memory_mb_per_node: f64,
}

/// The merged, deterministic outcome of a lab run. Contains **no**
/// wall-clock quantities: serializing this must yield identical bytes for
/// identical inputs regardless of `parallel`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabReport {
    pub scale: String,
    pub duration_minutes: usize,
    /// Functions in the schedule model.
    pub functions: usize,
    /// Arrivals the model schedules per cell (exact for deterministic IAT
    /// models, the Poisson-rounding target otherwise).
    pub scheduled_arrivals: u64,
    pub cluster: ClusterSummary,
    pub cells: Vec<CellResult>,
    pub aggregates: Vec<AggregateRow>,
    /// Total engine events across all cells.
    pub total_sim_events: u64,
}

/// Wall-clock measurements of a lab run — deliberately kept *outside*
/// [`LabReport`] so the report stays parallelism-independent.
#[derive(Debug, Clone, Copy)]
pub struct LabRunStats {
    pub cells: usize,
    pub workers: usize,
    pub wall_ms: u64,
    /// Engine events across all cells.
    pub events: u64,
    /// Arrivals across all cells.
    pub arrivals: u64,
}

impl LabRunStats {
    /// Engine events per wall-clock second, across all workers.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms == 0 {
            return self.events as f64 * 1_000.0;
        }
        self.events as f64 * 1_000.0 / self.wall_ms as f64
    }
}

// ---------------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------------

/// Run every cell of the grid against `model`, one cell per worker at a
/// time, and merge the results in canonical cell order.
///
/// Each cell opens its own lazy [`ArrivalStream`] over the shared model —
/// peak memory is O(functions + cells·cluster), independent of the number
/// of arrivals — and builds fresh policy/balancer instances, so cells
/// never share mutable state.
pub fn run_lab(
    model: &ScheduleModel,
    pool: &WorkloadPool,
    cfg: &LabConfig,
) -> (LabReport, LabRunStats) {
    let cells = cfg.cells();
    let workers = cfg.workers(cells.len());
    let started = Instant::now();

    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, CellResult)>> = Mutex::new(Vec::with_capacity(cells.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = cells.get(i) else { break };
                    local.push((i, run_cell(model, pool, cfg, spec)));
                }
                done.lock().unwrap().extend(local);
            });
        }
    });

    let mut results = done.into_inner().unwrap();
    results.sort_unstable_by_key(|&(i, _)| i);
    let results: Vec<CellResult> = results.into_iter().map(|(_, r)| r).collect();
    assert_eq!(results.len(), cells.len(), "every cell must report exactly once");

    let stats = LabRunStats {
        cells: results.len(),
        workers,
        wall_ms: started.elapsed().as_millis() as u64,
        events: results.iter().map(|r| r.sim_events).sum(),
        arrivals: results.iter().map(|r| r.arrivals).sum(),
    };
    let report = LabReport {
        scale: cfg.scale.clone(),
        duration_minutes: model.duration_minutes,
        functions: model.entries.len(),
        scheduled_arrivals: model.entries.iter().map(|e| e.total()).sum(),
        cluster: ClusterSummary {
            nodes: cfg.cluster.nodes,
            cores_per_node: cfg.cluster.cores_per_node,
            memory_mb_per_node: cfg.cluster.memory_mb_per_node,
        },
        aggregates: aggregate(&results),
        total_sim_events: stats.events,
        cells: results,
    };
    (report, stats)
}

fn run_cell(
    model: &ScheduleModel,
    pool: &WorkloadPool,
    cfg: &LabConfig,
    spec: &CellSpec,
) -> CellResult {
    let stream = ArrivalStream::new(model, spec.seed);
    let mut policy = spec.policy.build();
    let mut balancer = spec.balancer.build();
    let opts = SimOptions {
        service_jitter_sigma: cfg.service_jitter_sigma,
        seed: spec.seed,
        ..Default::default()
    };
    let m = faasrail_faas_sim::simulate(
        &stream,
        pool,
        &cfg.cluster,
        balancer.as_mut(),
        policy.as_mut(),
        &opts,
    );
    CellResult::from_metrics(spec, &m)
}

/// Collapse cells into per-(policy, balancer) rows, preserving first-seen
/// (i.e. canonical grid) order.
fn aggregate(cells: &[CellResult]) -> Vec<AggregateRow> {
    let mut rows: Vec<AggregateRow> = Vec::new();
    for c in cells {
        let row = match rows.iter_mut().find(|r| r.policy == c.policy && r.balancer == c.balancer) {
            Some(row) => row,
            None => {
                rows.push(AggregateRow {
                    policy: c.policy.clone(),
                    balancer: c.balancer.clone(),
                    seeds: 0,
                    mean_cold_start_rate: 0.0,
                    mean_idle_memory_mb: 0.0,
                    mean_utilization: 0.0,
                    mean_p99_response_ms: 0.0,
                    total_starved: 0,
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.seeds += 1;
        row.mean_cold_start_rate += c.cold_start_rate;
        row.mean_idle_memory_mb += c.mean_idle_memory_mb;
        row.mean_utilization += c.utilization;
        row.mean_p99_response_ms += c.p99_response_ms;
        row.total_starved += c.starved;
    }
    for r in &mut rows {
        let n = r.seeds as f64;
        r.mean_cold_start_rate /= n;
        r.mean_idle_memory_mb /= n;
        r.mean_utilization /= n;
        r.mean_p99_response_ms /= n;
    }
    rows
}

// ---------------------------------------------------------------------------
// Rendering & benchmarking
// ---------------------------------------------------------------------------

impl LabReport {
    /// Render the report as a Markdown document (cell table + aggregate
    /// table). Pure function of the report — no timestamps.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write;
        let mut md = String::new();
        let _ = writeln!(md, "# Lab report — scale `{}`", self.scale);
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "{} functions, {} scheduled arrivals over {} minutes; cluster \
             {}×{} cores, {:.0} MiB/node; {} cells, {} engine events total.",
            self.functions,
            self.scheduled_arrivals,
            self.duration_minutes,
            self.cluster.nodes,
            self.cluster.cores_per_node,
            self.cluster.memory_mb_per_node,
            self.cells.len(),
            self.total_sim_events,
        );
        let _ = writeln!(md);
        let _ = writeln!(md, "## Aggregates (mean over seeds)");
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "| policy | balancer | seeds | cold-start rate | idle mem (MiB) | util | p99 (ms) | starved |"
        );
        let _ = writeln!(md, "|---|---|---:|---:|---:|---:|---:|---:|");
        for r in &self.aggregates {
            let _ = writeln!(
                md,
                "| {} | {} | {} | {:.4} | {:.1} | {:.3} | {:.1} | {} |",
                r.policy,
                r.balancer,
                r.seeds,
                r.mean_cold_start_rate,
                r.mean_idle_memory_mb,
                r.mean_utilization,
                r.mean_p99_response_ms,
                r.total_starved,
            );
        }
        let _ = writeln!(md);
        let _ = writeln!(md, "## Cells");
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "| policy | balancer | seed | arrivals | completions | cold | warm | starved | \
             cold rate | idle mem (MiB) | p50 (ms) | p99 (ms) |"
        );
        let _ = writeln!(md, "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
        for c in &self.cells {
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} | {} | {} | {} | {} | {:.4} | {:.1} | {:.1} | {:.1} |",
                c.policy,
                c.balancer,
                c.seed,
                c.arrivals,
                c.completions,
                c.cold_starts,
                c.warm_starts,
                c.starved,
                c.cold_start_rate,
                c.mean_idle_memory_mb,
                c.p50_response_ms,
                c.p99_response_ms,
            );
        }
        md
    }
}

/// One line of the performance trajectory (`BENCH_sim_day1.json`): how fast
/// the machine chewed through a lab run. This *is* wall-clock data, kept
/// apart from [`LabReport`] by design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark name, e.g. `sim-day1`.
    pub name: String,
    pub scale: String,
    pub cells: usize,
    pub parallel: usize,
    /// Arrivals simulated across all cells.
    pub arrivals: u64,
    /// Engine events across all cells.
    pub events: u64,
    pub wall_ms: u64,
    pub events_per_sec: f64,
    /// Peak resident set size of the process, MiB (0 when unavailable).
    pub peak_rss_mb: f64,
}

impl BenchRecord {
    /// Assemble a record from run stats plus the current process's peak RSS.
    pub fn from_stats(name: &str, scale: &str, stats: &LabRunStats) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            scale: scale.to_string(),
            cells: stats.cells,
            parallel: stats.workers,
            arrivals: stats.arrivals,
            events: stats.events,
            wall_ms: stats.wall_ms,
            events_per_sec: stats.events_per_sec(),
            peak_rss_mb: peak_rss_mb().unwrap_or(0.0),
        }
    }
}

/// Peak resident set size of this process in MiB, from `VmHWM` in
/// `/proc/self/status`. `None` off Linux or if the field is missing.
pub fn peak_rss_mb() -> Option<f64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_core::{ExperimentSpec, IatModel, SpecEntry};
    use faasrail_workloads::{CostModel, WorkloadId};

    // Equidistant IAT: scheduled counts are exact, so conservation can be
    // asserted per cell (Poisson realizes approximately the scheduled count).
    fn model() -> ScheduleModel {
        let spec = ExperimentSpec {
            duration_minutes: 3,
            target_max_rps: 10.0,
            iat: IatModel::Equidistant,
            entries: (0..6)
                .map(|i| SpecEntry {
                    function_index: i,
                    workload: WorkloadId(i % 10),
                    alternates: vec![],
                    trace_duration_ms: 25.0,
                    per_minute: vec![30, 80, 10],
                })
                .collect(),
        };
        ScheduleModel::from_spec(&spec)
    }

    fn config() -> LabConfig {
        LabConfig {
            scale: "test".to_string(),
            policies: vec![PolicyKind::FixedTtl, PolicyKind::HybridHistogram],
            balancers: vec![BalancerKind::WarmFirst, BalancerKind::RoundRobin],
            seeds: vec![1, 2],
            cluster: ClusterConfig::default(),
            parallel: 1,
            service_jitter_sigma: 0.0,
        }
    }

    #[test]
    fn grid_order_is_policy_major_and_indexed() {
        let cells = config().cells();
        assert_eq!(cells.len(), 2 * 2 * 2);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        assert_eq!(
            (cells[0].policy, cells[0].balancer, cells[0].seed),
            (PolicyKind::FixedTtl, BalancerKind::WarmFirst, 1)
        );
        assert_eq!(
            (cells[1].policy, cells[1].balancer, cells[1].seed),
            (PolicyKind::FixedTtl, BalancerKind::WarmFirst, 2)
        );
        assert_eq!(cells[2].balancer, BalancerKind::RoundRobin);
        assert_eq!(cells[4].policy, PolicyKind::HybridHistogram);
    }

    #[test]
    fn report_is_byte_identical_across_parallelism() {
        let model = model();
        let pool = WorkloadPool::vanilla(&CostModel::default_calibration());
        let mut serial_cfg = config();
        serial_cfg.parallel = 1;
        let mut parallel_cfg = config();
        parallel_cfg.parallel = 4;

        let (serial, _) = run_lab(&model, &pool, &serial_cfg);
        let (parallel, _) = run_lab(&model, &pool, &parallel_cfg);
        assert_eq!(serial, parallel);
        assert_eq!(
            serde_json::to_string_pretty(&serial).unwrap(),
            serde_json::to_string_pretty(&parallel).unwrap(),
            "LabReport JSON must not depend on worker count"
        );
    }

    #[test]
    fn report_measures_the_whole_grid() {
        let model = model();
        let pool = WorkloadPool::vanilla(&CostModel::default_calibration());
        let cfg = config();
        let (report, stats) = run_lab(&model, &pool, &cfg);

        assert_eq!(report.cells.len(), 8);
        assert_eq!(report.functions, 6);
        assert_eq!(report.scheduled_arrivals, 6 * (30 + 80 + 10));
        // Every cell saw every scheduled arrival.
        for c in &report.cells {
            assert_eq!(c.arrivals, report.scheduled_arrivals);
            assert_eq!(c.completions + c.starved, c.arrivals);
            assert!(c.sim_events >= c.arrivals);
        }
        // Four (policy, balancer) combinations, two seeds each.
        assert_eq!(report.aggregates.len(), 4);
        assert!(report.aggregates.iter().all(|r| r.seeds == 2));
        assert_eq!(stats.cells, 8);
        assert_eq!(stats.arrivals, 8 * report.scheduled_arrivals);
        assert_eq!(stats.events, report.total_sim_events);
    }

    #[test]
    fn markdown_includes_every_cell_and_aggregate() {
        let model = model();
        let pool = WorkloadPool::vanilla(&CostModel::default_calibration());
        let (report, _) = run_lab(&model, &pool, &config());
        let md = report.to_markdown();
        assert!(md.contains("# Lab report"));
        assert!(md.contains("## Aggregates"));
        assert!(md.contains("## Cells"));
        assert!(md.contains("hybrid-histogram"));
        assert!(md.contains("round-robin"));
        // Cell rows: 8 data rows in the cells table.
        let cell_rows = md.lines().filter(|l| l.starts_with("| fixed-ttl |")).count()
            + md.lines().filter(|l| l.starts_with("| hybrid-histogram |")).count();
        assert_eq!(cell_rows, 8 + 4, "8 cell rows + 4 aggregate rows");
    }

    #[test]
    fn bench_record_carries_throughput_and_rss() {
        let stats = LabRunStats {
            cells: 4,
            workers: 2,
            wall_ms: 2_000,
            events: 1_000_000,
            arrivals: 400_000,
        };
        let rec = BenchRecord::from_stats("sim-smoke", "small", &stats);
        assert_eq!(rec.events_per_sec, 500_000.0);
        assert_eq!(rec.cells, 4);
        assert_eq!(rec.parallel, 2);
        if cfg!(target_os = "linux") {
            assert!(rec.peak_rss_mb > 0.0, "VmHWM should be readable on Linux");
        }
    }
}

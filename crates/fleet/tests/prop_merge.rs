//! Property: the two merge operations fleet mode is built on —
//! [`RunMetrics::merge`] and [`Snapshot::merge`] — are **commutative and
//! associative**. The coordinator merges shard results in whatever order
//! agents happen to finish (and re-merges on retries), so the fleet-wide
//! result must not depend on arrival order or grouping.
//!
//! Exact equality is the right assertion: both structures are integer
//! counters plus [`LogHistogram`]s (integer bucket counts and min/max
//! tracking — no floating-point accumulation), so merge order can change
//! nothing at all, not just nothing "within epsilon".

use faasrail_loadgen::RunMetrics;
use faasrail_telemetry::{OutcomeClass, Snapshot};
use faasrail_workloads::WorkloadKind;
use proptest::prelude::*;

/// Arbitrary but internally consistent [`RunMetrics`], built through the
/// same recording paths a real replay uses.
fn arb_metrics() -> impl Strategy<Value = RunMetrics> {
    let event = (0u8..5, 0u64..5, 1u64..2_000, any::<bool>());
    (prop::collection::vec(event, 0..60), any::<bool>()).prop_map(|(events, aborted)| {
        let mut m = RunMetrics::new();
        for (class, minute, micros, cold) in events {
            m.record_issued(minute * 60_000);
            let response_s = micros as f64 / 1e6;
            match class {
                0 => {
                    m.completed += 1;
                    *m.per_kind.entry(WorkloadKind::Matmul).or_insert(0) += 1;
                }
                1 => {
                    m.errors += 1;
                    m.app_errors += 1;
                }
                2 => {
                    m.errors += 1;
                    m.timeouts += 1;
                }
                3 => {
                    m.errors += 1;
                    m.transport_errors += 1;
                }
                _ => {
                    m.errors += 1;
                    m.shed += 1;
                }
            }
            if cold {
                m.cold_starts += 1;
            }
            m.response.record(response_s);
            m.service.record(response_s / 2.0);
            m.lateness.record(response_s / 10.0);
        }
        m.aborted = aborted;
        m
    })
}

/// Arbitrary [`Snapshot`], via the recording API so the histogram layout
/// matches what agents actually stream.
fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    let event = (0u8..5, 1u64..2_000, any::<bool>());
    (prop::collection::vec(event, 0..60), 0u64..20).prop_map(|(events, extra_issued)| {
        let mut s = Snapshot::default();
        for (class, micros, cold) in events {
            s.issued += 1;
            let outcome = match class {
                0 => OutcomeClass::Ok,
                1 => OutcomeClass::AppError,
                2 => OutcomeClass::Timeout,
                3 => OutcomeClass::Transport,
                _ => OutcomeClass::Shed,
            };
            match outcome {
                OutcomeClass::Ok => s.completed += 1,
                OutcomeClass::AppError => s.errors[0] += 1,
                OutcomeClass::Timeout => s.errors[1] += 1,
                OutcomeClass::Transport => s.errors[2] += 1,
                OutcomeClass::Shed => s.errors[3] += 1,
            }
            if cold {
                s.cold_starts += 1;
            }
            s.response.record(micros as f64 / 1e6);
        }
        s.issued += extra_issued; // dispatched but not yet finished
        s
    })
}

fn merged_metrics(parts: &[&RunMetrics]) -> RunMetrics {
    let mut out = RunMetrics::new();
    for p in parts {
        out.merge(p);
    }
    out
}

fn merged_snapshots(parts: &[&Snapshot]) -> Snapshot {
    let mut out = Snapshot::default();
    for p in parts {
        out.merge(p);
    }
    out
}

proptest! {
    #[test]
    fn run_metrics_merge_is_commutative(a in arb_metrics(), b in arb_metrics()) {
        prop_assert_eq!(merged_metrics(&[&a, &b]), merged_metrics(&[&b, &a]));
    }

    #[test]
    fn run_metrics_merge_is_associative(
        a in arb_metrics(),
        b in arb_metrics(),
        c in arb_metrics(),
    ) {
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = merged_metrics(&[&a, &b]);
        left.merge(&c);
        let mut right = a.clone();
        right.merge(&merged_metrics(&[&b, &c]));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn run_metrics_merge_identity_and_partition(a in arb_metrics()) {
        // The empty metrics are a true identity, left and right.
        prop_assert_eq!(merged_metrics(&[&RunMetrics::new(), &a]), a.clone());
        prop_assert_eq!(merged_metrics(&[&a, &RunMetrics::new()]), a.clone());
        // And merging never breaks the outcome partition.
        let m = merged_metrics(&[&a, &a]);
        prop_assert_eq!(m.app_errors + m.timeouts + m.transport_errors + m.shed, m.errors);
        prop_assert_eq!(m.completed + m.errors, m.issued);
    }

    #[test]
    fn snapshot_merge_is_commutative(a in arb_snapshot(), b in arb_snapshot()) {
        prop_assert_eq!(merged_snapshots(&[&a, &b]), merged_snapshots(&[&b, &a]));
    }

    #[test]
    fn snapshot_merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        let mut left = merged_snapshots(&[&a, &b]);
        left.merge(&c);
        let mut right = a.clone();
        right.merge(&merged_snapshots(&[&b, &c]));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn snapshot_merge_identity(a in arb_snapshot()) {
        prop_assert_eq!(merged_snapshots(&[&Snapshot::default(), &a]), a.clone());
        prop_assert_eq!(merged_snapshots(&[&a, &Snapshot::default()]), a);
    }
}

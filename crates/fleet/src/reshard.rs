//! Dynamic resharding: exact accounting and deterministic planning for a
//! dead shard's remaining schedule.
//!
//! Everything here is pure — no sockets, no clocks — so the control
//! plane's accounting algebra is property-testable in isolation:
//!
//! * [`prefix_metrics`] converts a lost work item's last acked
//!   [`WorkPrefix`] (the contiguous-finished high-water mark) plus the
//!   retained trace into [`RunMetrics`] for exactly the finished prefix —
//!   per-minute and per-kind series reconstructed from the trace, so the
//!   fleet's merged offered series stays bit-identical to an unkilled
//!   run's. Latency histograms are *not* reconstructable from counters and
//!   are deliberately left empty (a documented loss: a dead agent takes
//!   its histograms with it; counts never lie).
//! * [`plan_grants`] splits the unfinished remainder across survivors with
//!   the same function-keyed hash partition the original sharding used
//!   ([`faasrail_loadgen::partition_remainder`]), so reassignment is a
//!   pure function of `(trace, watermark, survivor set)` — two
//!   coordinators observing the same death in the same state plan the
//!   same grants.

use faasrail_core::RequestTrace;
use faasrail_loadgen::{partition_remainder, remainder_after, RunMetrics};
use faasrail_workloads::WorkloadPool;

use crate::wire::{Grant, WorkPrefix};

/// Metrics for the finished prefix of a lost work item.
///
/// `prefix.watermark` is clamped to the trace length; counters are taken
/// from the prefix (the agent counted outcomes, the coordinator cannot
/// re-derive them), while `issued_per_minute` and `per_kind` are
/// reconstructed from the retained trace so schedule-shaped series stay
/// exact. `completed + errors == issued` holds whenever the agent's
/// prefix was consistent ([`WorkPrefix::is_consistent`]).
pub fn prefix_metrics(
    trace: &RequestTrace,
    pool: &WorkloadPool,
    prefix: &WorkPrefix,
) -> RunMetrics {
    let w = (prefix.watermark as usize).min(trace.requests.len());
    let mut m = RunMetrics::new();
    m.completed = prefix.completed;
    m.app_errors = prefix.errors[0];
    m.timeouts = prefix.errors[1];
    m.transport_errors = prefix.errors[2];
    m.shed = prefix.errors[3];
    m.errors = prefix.errors.iter().sum();
    m.cold_starts = prefix.cold_starts;
    for r in &trace.requests[..w] {
        m.record_issued(r.at_ms);
        if let Some(workload) = pool.get(r.workload) {
            *m.per_kind.entry(workload.input.kind()).or_insert(0) += 1;
        }
    }
    m
}

/// Per-minute offered series of a trace (for accounting remainders no
/// survivor could take).
pub fn per_minute_of(trace: &RequestTrace) -> Vec<u64> {
    let mut v = Vec::new();
    for r in &trace.requests {
        let minute = (r.at_ms / 60_000) as usize;
        if v.len() <= minute {
            v.resize(minute + 1, 0);
        }
        v[minute] += 1;
    }
    v
}

/// Plan the reassignment of a dead work item's remainder.
///
/// `trace` is the work's full retained trace, `watermark` its last acked
/// finished-prefix length. The remainder (everything at or beyond the
/// watermark) is partitioned across `survivors` (shard ids, order-
/// significant — pass them sorted for cross-run determinism); each
/// non-empty part becomes one [`Grant`] with consecutive ids starting at
/// `next_id`. Returns the planned grants paired with their target shard.
/// Empty when the remainder is empty; panics if `survivors` is empty
/// (callers must take the aborted-remainder path instead).
pub fn plan_grants(
    trace: &RequestTrace,
    watermark: u64,
    survivors: &[u32],
    next_id: u64,
    origin_shard: u32,
    elapsed_ms: u64,
) -> Vec<(u32, Grant)> {
    let remainder = remainder_after(trace, watermark as usize);
    if remainder.requests.is_empty() {
        return Vec::new();
    }
    partition_remainder(&remainder, survivors)
        .into_iter()
        .enumerate()
        .map(|(i, (target, part))| {
            (target, Grant { id: next_id + i as u64, origin_shard, elapsed_ms, trace: part })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_core::Request;
    use faasrail_workloads::{CostModel, WorkloadId, WorkloadPool};

    fn pool() -> WorkloadPool {
        WorkloadPool::vanilla(&CostModel::default_calibration())
    }

    fn trace(n: u64) -> RequestTrace {
        RequestTrace {
            duration_minutes: 2,
            requests: (0..n)
                .map(|i| Request {
                    at_ms: i * 1_000,
                    workload: WorkloadId((i % 3) as u32),
                    function_index: (i % 7) as u32,
                })
                .collect(),
        }
    }

    #[test]
    fn prefix_metrics_reconstructs_schedule_series() {
        let t = trace(100);
        let p = WorkPrefix {
            work: 0,
            watermark: 70,
            completed: 60,
            errors: [4, 3, 2, 1],
            cold_starts: 5,
        };
        assert!(p.is_consistent());
        let m = prefix_metrics(&t, &pool(), &p);
        assert_eq!(m.issued, 70);
        assert_eq!(m.completed + m.errors, 70, "prefix partition is exact");
        assert_eq!(m.issued_per_minute, vec![60, 10], "minutes from the trace prefix");
        assert_eq!(m.per_kind.values().sum::<u64>(), 70);
        assert_eq!(m.cold_starts, 5);
        assert_eq!(m.response.total(), 0, "histograms are not reconstructable");
        assert!(!m.aborted, "prefix work finished; the remainder moves, not aborts");
    }

    #[test]
    fn prefix_metrics_clamps_watermark() {
        let t = trace(10);
        let p = WorkPrefix { watermark: 1_000, completed: 10, ..WorkPrefix::default() };
        let m = prefix_metrics(&t, &pool(), &p);
        assert_eq!(m.issued, 10);
    }

    #[test]
    fn plan_grants_partitions_remainder_deterministically() {
        let t = trace(90);
        let survivors = [0u32, 2];
        let grants = plan_grants(&t, 30, &survivors, 100, 1, 31_000);
        assert!(!grants.is_empty());
        let total: usize = grants.iter().map(|(_, g)| g.trace.requests.len()).sum();
        assert_eq!(total, 60, "grants cover exactly the remainder");
        let mut ids: Vec<u64> = grants.iter().map(|(_, g)| g.id).collect();
        ids.dedup();
        assert_eq!(ids, (100..100 + grants.len() as u64).collect::<Vec<_>>());
        for (target, g) in &grants {
            assert!(survivors.contains(target));
            assert_eq!(g.origin_shard, 1);
            assert_eq!(g.elapsed_ms, 31_000);
            assert!(g.trace.requests.iter().all(|r| r.at_ms >= 30_000), "remainder only");
        }
        // Pure function: identical plan on replay.
        let again = plan_grants(&t, 30, &survivors, 100, 1, 31_000);
        assert_eq!(
            serde_json::to_string(&grants.iter().map(|(s, g)| (s, &g.trace)).collect::<Vec<_>>())
                .unwrap(),
            serde_json::to_string(&again.iter().map(|(s, g)| (s, &g.trace)).collect::<Vec<_>>())
                .unwrap()
        );
    }

    #[test]
    fn plan_grants_empty_for_finished_work() {
        let t = trace(10);
        assert!(plan_grants(&t, 10, &[0], 5, 1, 0).is_empty());
    }

    #[test]
    fn per_minute_of_buckets_by_schedule() {
        let t = trace(90); // 1/s → 60 in minute 0, 30 in minute 1
        assert_eq!(per_minute_of(&t), vec![60, 30]);
        assert!(per_minute_of(&RequestTrace { duration_minutes: 1, requests: vec![] }).is_empty());
    }
}

//! The fleet agent: one process, one shard — plus whatever the control
//! plane hands it mid-run.
//!
//! An agent dials the coordinator, exchanges `Hello`/`HelloAck` (protocol
//! version + rejoin token + liveness lease), answers the clock probes,
//! receives its self-contained [`Assignment`] (shard trace, workload pool,
//! and replay config — no local files needed), arms itself, and fires the
//! replay at the synchronized start instant. While replaying it streams
//! cumulative [`Snapshot`]s back on the progress cadence, each carrying a
//! [`WorkPrefix`] per work item — the contiguous-finished high-water marks
//! the coordinator reshards from if this agent dies — plus its current
//! pacing lag (backpressure signal).
//!
//! Mid-run the coordinator may `Reassign` part of a dead shard's
//! remainder; the agent acks, spawns a catch-up replay
//! ([`faasrail_loadgen::replay_resumed`] — overdue arrivals fire
//! immediately and book their deficit as lateness, never dropped or
//! compressed), and keeps reporting. When every work item is accounted
//! for, the coordinator sends `Finish` and the agent reports one `Done`
//! with its merged metrics and (optionally) its span log.
//!
//! Failure paths: an `Abort` frame stops the replays, drains in-flight
//! work, and still delivers `Done` with the partial, `aborted`-marked
//! metrics. A *lost link* (EOF or a socket error) instead stops the
//! replays and rejoins with bounded exponential backoff, presenting the
//! `HelloAck` resume token — the coordinator already resharded this
//! agent's work at the moment of loss, so the rejoined agent comes back
//! as fresh capacity for subsequent reassignments.

use std::collections::BTreeMap;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use faasrail_loadgen::{
    replay_resumed, Backend, InProcessBackend, PaceGauge, ReplayConfig, ReplayInstruments,
    ResumeSpec, RunMetrics,
};
use faasrail_telemetry::{EventSink, OutcomeClass, Recorder, RingSink, TelemetryEvent};

use crate::wire::{
    read_frame, wall_clock_us, write_frame, Assignment, FleetMessage, WorkPrefix, PROTOCOL_VERSION,
};

/// Agent-side knobs (everything else arrives in the [`Assignment`]).
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Name reported in `Hello` (shows up in the coordinator's report).
    pub name: String,
    /// Connection attempts before giving up — agents usually start
    /// before (or racing) the coordinator.
    pub connect_attempts: u32,
    pub retry_delay: Duration,
    /// Reconnect after a lost coordinator link mid-run. Disable to get
    /// the pre-elastic behavior: a lost link fails the agent.
    pub rejoin: bool,
    /// Cap on the exponential rejoin backoff (which starts at
    /// `retry_delay` and doubles per attempt).
    pub max_rejoin_backoff: Duration,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            name: String::new(),
            connect_attempts: 40,
            retry_delay: Duration::from_millis(250),
            rejoin: true,
            max_rejoin_backoff: Duration::from_secs(5),
        }
    }
}

/// What one agent run produced (the same data the coordinator received).
#[derive(Debug)]
pub struct AgentRun {
    pub shard: u32,
    pub assigned: u64,
    /// Reassignment grants this agent served on top of its own shard.
    pub granted: u64,
    /// Times the agent lost the coordinator link and rejoined.
    pub rejoined: u32,
    pub metrics: RunMetrics,
}

/// Contiguous-completion tracker for one work item, interposed as the
/// replay's [`EventSink`].
///
/// Invocation spans carry their dispatch sequence number (`seq` equals
/// the request's index in the work's trace, because the pacer dispatches
/// in order); the tracker advances a watermark over the *contiguous*
/// finished prefix, buffering out-of-order completions until the gap
/// closes, and counts outcomes within the prefix. The resulting
/// [`WorkPrefix`] is what `Progress` ships to the coordinator — exactly
/// the state resharding needs if this agent dies.
///
/// Optionally forwards spans to a shared [`RingSink`] (span capture),
/// shifting grant-replay timestamps onto the agent's main run timeline so
/// one `run_start_wall_us` rebases the whole log.
pub struct PrefixTracker {
    work: u64,
    /// Added to span timestamps before forwarding (grant replays start
    /// later than the main run but share its event log).
    shift_us: u64,
    /// Forward `run_start`/`run_end` lifecycle events too (main work
    /// only — grant replays would duplicate them in the shared log).
    forward_lifecycle: bool,
    capture: Option<Arc<RingSink>>,
    state: Mutex<PrefixState>,
}

#[derive(Default)]
struct PrefixState {
    watermark: u64,
    completed: u64,
    errors: [u64; 4],
    cold_starts: u64,
    /// Finished out of order, waiting for the gap below them to close.
    pending: BTreeMap<u64, (OutcomeClass, bool)>,
}

impl PrefixState {
    fn apply(&mut self, outcome: OutcomeClass, cold: bool) {
        match outcome.error_index() {
            None => self.completed += 1,
            Some(i) => self.errors[i] += 1,
        }
        if cold {
            self.cold_starts += 1;
        }
        self.watermark += 1;
    }

    fn observe(&mut self, seq: u64, outcome: OutcomeClass, cold: bool) {
        if seq == self.watermark {
            self.apply(outcome, cold);
            while let Some(&(o, c)) = self.pending.get(&self.watermark) {
                self.pending.remove(&self.watermark);
                self.apply(o, c);
            }
        } else if seq > self.watermark {
            self.pending.insert(seq, (outcome, cold));
        }
        // seq < watermark would be a duplicate span; ignore.
    }
}

impl PrefixTracker {
    pub fn new(
        work: u64,
        shift_us: u64,
        forward_lifecycle: bool,
        capture: Option<Arc<RingSink>>,
    ) -> Self {
        PrefixTracker {
            work,
            shift_us,
            forward_lifecycle,
            capture,
            state: Mutex::new(PrefixState::default()),
        }
    }

    /// Current cumulative prefix, for a `Progress` frame.
    pub fn prefix(&self) -> WorkPrefix {
        let st = self.state.lock().unwrap();
        WorkPrefix {
            work: self.work,
            watermark: st.watermark,
            completed: st.completed,
            errors: st.errors,
            cold_starts: st.cold_starts,
        }
    }
}

impl EventSink for PrefixTracker {
    fn emit(&self, event: &TelemetryEvent) {
        match event {
            TelemetryEvent::Invocation(span) => {
                self.state.lock().unwrap().observe(span.seq, span.outcome, span.cold_start);
                if let Some(ring) = &self.capture {
                    if self.shift_us == 0 {
                        ring.emit(event);
                    } else {
                        let mut s = span.clone();
                        s.target_us += self.shift_us;
                        s.dispatched_us += self.shift_us;
                        s.picked_up_us += self.shift_us;
                        s.completed_us += self.shift_us;
                        ring.emit(&TelemetryEvent::Invocation(s));
                    }
                }
            }
            other => {
                if self.forward_lifecycle {
                    if let Some(ring) = &self.capture {
                        ring.emit(other);
                    }
                }
            }
        }
    }
}

/// Dial the coordinator and serve one shard with the default backend
/// selection: in-process kernel execution. Custom backends (e.g. the
/// HTTP gateway client) go through [`run_agent_with`].
pub fn run_agent<A: ToSocketAddrs + Clone>(
    addr: A,
    cfg: &AgentConfig,
) -> io::Result<Option<AgentRun>> {
    run_agent_with(addr, cfg, |_| Ok(Arc::new(InProcessBackend)))
}

/// How one coordinator session ended, from the agent's point of view.
enum SessionEnd {
    /// Clean exit: `Done` delivered (complete or operator-aborted run).
    Finished(Box<AgentRun>),
    /// Coordinator aborted before `Start` (e.g. it refused the agent).
    AbortedBeforeStart,
    /// The link died mid-run; the coordinator reshards this agent's work,
    /// and the agent may rejoin with `token` as fresh capacity.
    Lost { token: Option<String> },
}

/// [`run_agent`] with a caller-chosen backend, constructed once per
/// session when the assignment (and thus the `target`) is known. A
/// backend that fails to construct fails the agent *before* it
/// acknowledges `Ready`, so the coordinator sees a handshake error
/// instead of a shard lost mid-run.
///
/// Returns `Ok(None)` if the coordinator aborted the run before start.
/// A lost link mid-run rejoins with bounded exponential backoff (unless
/// [`AgentConfig::rejoin`] is off) — the rejoined session presents the
/// coordinator-issued resume token and serves whatever the control plane
/// reassigns next.
pub fn run_agent_with<A, F>(
    addr: A,
    cfg: &AgentConfig,
    make_backend: F,
) -> io::Result<Option<AgentRun>>
where
    A: ToSocketAddrs + Clone,
    F: Fn(&Assignment) -> io::Result<Arc<dyn Backend>>,
{
    let mut token: Option<String> = None;
    let mut backoff = cfg.retry_delay.max(Duration::from_millis(10));
    let mut rejoined = 0u32;
    loop {
        match run_session(addr.clone(), cfg, &make_backend, token.take())? {
            SessionEnd::Finished(mut run) => {
                run.rejoined = rejoined;
                return Ok(Some(*run));
            }
            SessionEnd::AbortedBeforeStart => return Ok(None),
            SessionEnd::Lost { token: t } => {
                if !cfg.rejoin {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "coordinator link lost mid-run (rejoin disabled)",
                    ));
                }
                token = t;
                rejoined += 1;
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2).min(cfg.max_rejoin_backoff);
            }
        }
    }
}

/// One full coordinator session: connect, handshake, replay (original
/// shard plus any grants), report.
fn run_session<A, F>(
    addr: A,
    cfg: &AgentConfig,
    make_backend: &F,
    resume_token: Option<String>,
) -> io::Result<SessionEnd>
where
    A: ToSocketAddrs + Clone,
    F: Fn(&Assignment) -> io::Result<Arc<dyn Backend>>,
{
    let stream = connect_with_retry(addr, cfg)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream));

    let eof = || io::Error::new(io::ErrorKind::UnexpectedEof, "coordinator hung up");
    {
        let mut w = writer.lock().unwrap();
        let hello = FleetMessage::Hello {
            name: cfg.name.clone(),
            wall_us: wall_clock_us(),
            proto: PROTOCOL_VERSION,
            resume_token,
        };
        write_frame(&mut *w, &hello)?;
    }
    let session_token = match read_frame(&mut reader)?.ok_or_else(eof)? {
        FleetMessage::HelloAck { proto, token, .. } => {
            if proto != PROTOCOL_VERSION {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("coordinator speaks protocol v{proto}, this agent v{PROTOCOL_VERSION}"),
                ));
            }
            token
        }
        FleetMessage::Abort { reason } => {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("coordinator refused this agent: {reason}"),
            ))
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected hello_ack, got {other:?}"),
            ))
        }
    };

    // Handshake: probes come in unknown number, then Assign, then Start.
    let mut assigned: Option<(Assignment, Arc<dyn Backend>)> = None;
    let start_at_wall_us = loop {
        match read_frame(&mut reader)?.ok_or_else(eof)? {
            FleetMessage::Probe { seq, wall_us } => {
                let reply =
                    FleetMessage::ProbeReply { seq, wall_us, agent_wall_us: wall_clock_us() };
                write_frame(&mut *writer.lock().unwrap(), &reply)?;
            }
            FleetMessage::Assign { assignment: a } => {
                if assigned.is_some() {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "double assign"));
                }
                let backend = make_backend(&a)?;
                let ready =
                    FleetMessage::Ready { shard: a.shard, requests: a.trace.requests.len() as u64 };
                write_frame(&mut *writer.lock().unwrap(), &ready)?;
                assigned = Some((a, backend));
            }
            FleetMessage::Start { at_agent_wall_us } => break at_agent_wall_us,
            FleetMessage::Abort { .. } => return Ok(SessionEnd::AbortedBeforeStart),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected message during handshake: {other:?}"),
                ))
            }
        }
    };
    let (assignment, backend) = assigned
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "start before assign"))?;
    let shard = assignment.shard;
    let replay_cfg = ReplayConfig { pacing: assignment.pacing, workers: assignment.workers.max(1) };
    let recorder = Recorder::new(replay_cfg.workers + 1);
    let ring: Option<Arc<RingSink>> = assignment.capture_events.then(|| {
        let cap = assignment.event_capacity.max(assignment.trace.requests.len() as u64 + 16).max(1)
            as usize;
        Arc::new(RingSink::with_capacity(cap))
    });
    let gauge = PaceGauge::new();
    let stop = AtomicBool::new(false);
    let pump_done = AtomicBool::new(false);
    // Work items this session holds: the original shard, plus grants.
    let works: Mutex<Vec<Arc<PrefixTracker>>> = Mutex::new(Vec::new());
    // Replays still running (or accepted and not yet finished).
    let active = AtomicUsize::new(0);
    let results: Mutex<Vec<RunMetrics>> = Mutex::new(Vec::new());
    let mut granted = 0u64;

    wait_until_wall_us(start_at_wall_us, &stop);
    let run_start_wall_us = wall_clock_us();

    let end = std::thread::scope(|scope| -> io::Result<SessionEnd> {
        // Register the main work *before* the pump can report idle.
        let main_tracker = Arc::new(PrefixTracker::new(shard as u64, 0, true, ring.clone()));
        works.lock().unwrap().push(Arc::clone(&main_tracker));
        active.fetch_add(1, Ordering::AcqRel);

        // Progress pump: cumulative snapshot + per-work prefixes + lag on
        // the assigned cadence. Doubles as the liveness heartbeat — the
        // coordinator's lease rides on these frames arriving.
        {
            let writer = Arc::clone(&writer);
            let (recorder, gauge) = (&recorder, &gauge);
            let (works, active, pump_done) = (&works, &active, &pump_done);
            let every = Duration::from_millis(assignment.progress_every_ms.max(50));
            scope.spawn(move || {
                let mut since_send = Duration::ZERO;
                while !pump_done.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(25));
                    since_send += Duration::from_millis(25);
                    if since_send < every {
                        continue;
                    }
                    since_send = Duration::ZERO;
                    let msg = FleetMessage::Progress {
                        shard,
                        snapshot: recorder.snapshot(),
                        prefixes: works.lock().unwrap().iter().map(|t| t.prefix()).collect(),
                        lag_ms: gauge.lag_ms(),
                        max_lag_ms: gauge.max_lag_ms(),
                        idle: active.load(Ordering::Acquire) == 0,
                    };
                    if write_frame(&mut *writer.lock().unwrap(), &msg).is_err() {
                        return; // link gone; the control loop will notice too
                    }
                }
            });
        }

        // The original shard's replay.
        {
            let (assignment, backend) = (&assignment, &backend);
            let (recorder, gauge, stop) = (&recorder, &gauge, &stop);
            let (results, active, replay_cfg) = (&results, &active, &replay_cfg);
            scope.spawn(move || {
                let inst = ReplayInstruments {
                    sink: &*main_tracker,
                    recorder: Some(recorder),
                    pace: Some(gauge),
                };
                let m = replay_resumed(
                    &assignment.trace,
                    &assignment.pool,
                    backend,
                    replay_cfg,
                    stop,
                    &inst,
                    &ResumeSpec::default(),
                );
                results.lock().unwrap().push(m);
                active.fetch_sub(1, Ordering::AcqRel);
            });
        }

        // Control loop: grants, finish, abort, link loss.
        reader.get_ref().set_read_timeout(Some(Duration::from_millis(250))).ok();
        let outcome: io::Result<bool> = loop {
            match read_frame(&mut reader) {
                Ok(Some(FleetMessage::Reassign { grant })) => {
                    granted += 1;
                    active.fetch_add(1, Ordering::AcqRel);
                    // Shift grant spans onto the main run's timeline so the
                    // shared event log rebases with one run_start_wall_us.
                    let shift_us = wall_clock_us().saturating_sub(run_start_wall_us);
                    let tracker =
                        Arc::new(PrefixTracker::new(grant.id, shift_us, false, ring.clone()));
                    works.lock().unwrap().push(Arc::clone(&tracker));
                    let ack = FleetMessage::ReassignAck {
                        shard,
                        grant: grant.id,
                        requests: grant.trace.requests.len() as u64,
                    };
                    write_frame(&mut *writer.lock().unwrap(), &ack)?;
                    let (assignment, backend) = (&assignment, &backend);
                    let (recorder, gauge, stop) = (&recorder, &gauge, &stop);
                    let (results, active, replay_cfg) = (&results, &active, &replay_cfg);
                    scope.spawn(move || {
                        let inst = ReplayInstruments {
                            sink: &*tracker,
                            recorder: Some(recorder),
                            pace: Some(gauge),
                        };
                        let m = replay_resumed(
                            &grant.trace,
                            &assignment.pool,
                            backend,
                            replay_cfg,
                            stop,
                            &inst,
                            &ResumeSpec { elapsed_ms: grant.elapsed_ms },
                        );
                        results.lock().unwrap().push(m);
                        active.fetch_sub(1, Ordering::AcqRel);
                    });
                }
                Ok(Some(FleetMessage::Finish)) => break Ok(true),
                Ok(Some(FleetMessage::Abort { .. })) => {
                    stop.store(true, Ordering::Release);
                    break Ok(true);
                }
                Ok(Some(_)) => {}            // stray frame; ignore
                Ok(None) => break Ok(false), // clean EOF: link lost
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => break Ok(false), // broken link
            }
        };

        // Drain: let every accepted replay run down (instantly, if the
        // stop flag is up), then release the pump.
        let deliver = outcome?;
        if !deliver {
            stop.store(true, Ordering::Release);
        }
        while active.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        pump_done.store(true, Ordering::Release);
        Ok(if deliver {
            SessionEnd::Finished(Box::new(AgentRun {
                shard,
                assigned: assignment.trace.requests.len() as u64,
                granted,
                rejoined: 0,
                metrics: RunMetrics::new(), // filled in below
            }))
        } else {
            SessionEnd::Lost { token: Some(session_token) }
        })
    })?;

    let mut run = match end {
        SessionEnd::Finished(run) => run,
        lost => return Ok(lost),
    };
    let mut metrics = RunMetrics::new();
    for m in results.into_inner().unwrap() {
        metrics.merge(&m);
    }
    run.metrics = metrics;

    let events = ring.map(|r| r.events()).unwrap_or_default();
    {
        // Final cumulative progress (with final prefixes), then the
        // result. The progress is best-effort; Done must land.
        let mut w = writer.lock().unwrap();
        let last = FleetMessage::Progress {
            shard,
            snapshot: recorder.snapshot(),
            prefixes: works.into_inner().unwrap().iter().map(|t| t.prefix()).collect(),
            lag_ms: gauge.lag_ms(),
            max_lag_ms: gauge.max_lag_ms(),
            idle: true,
        };
        write_frame(&mut *w, &last).ok();
        let done_msg =
            FleetMessage::Done { shard, run_start_wall_us, metrics: run.metrics.clone(), events };
        write_frame(&mut *w, &done_msg)?;
    }
    Ok(SessionEnd::Finished(run))
}

fn connect_with_retry<A: ToSocketAddrs + Clone>(
    addr: A,
    cfg: &AgentConfig,
) -> io::Result<TcpStream> {
    let attempts = cfg.connect_attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        match TcpStream::connect(addr.clone()) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(cfg.retry_delay);
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no connect attempts")))
}

/// Sleep until the agent wall clock reaches `target_us` (coarse sleep to
/// within 5ms, then fine 200µs steps — start skew stays well under the
/// pacer's own accuracy). Bails early if `stop` is set.
fn wait_until_wall_us(target_us: u64, stop: &AtomicBool) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let now = wall_clock_us();
        if now >= target_us {
            return;
        }
        let remaining = target_us - now;
        if remaining > 5_000 {
            std::thread::sleep(Duration::from_micros(remaining - 5_000));
        } else {
            std::thread::sleep(Duration::from_micros(remaining.min(200)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_telemetry::InvocationSpan;

    #[test]
    fn wait_until_reaches_target() {
        let target = wall_clock_us() + 20_000;
        wait_until_wall_us(target, &AtomicBool::new(false));
        assert!(wall_clock_us() >= target);
    }

    #[test]
    fn wait_until_past_target_returns_immediately() {
        let before = wall_clock_us();
        wait_until_wall_us(before.saturating_sub(1_000_000), &AtomicBool::new(false));
        assert!(wall_clock_us() - before < 1_000_000, "no sleep for past targets");
    }

    #[test]
    fn connect_retry_reports_last_error() {
        // Port 1 on localhost: reliably refused.
        let cfg = AgentConfig {
            connect_attempts: 2,
            retry_delay: Duration::from_millis(1),
            ..AgentConfig::default()
        };
        assert!(connect_with_retry("127.0.0.1:1", &cfg).is_err());
    }

    fn span(seq: u64, outcome: OutcomeClass, cold: bool) -> TelemetryEvent {
        TelemetryEvent::Invocation(InvocationSpan {
            trace_id: seq + 1,
            seq,
            workload: 0,
            function_index: 0,
            scheduled_ms: seq * 1_000,
            target_us: 10,
            dispatched_us: 20,
            picked_up_us: 30,
            completed_us: 40,
            service_ms: 1.0,
            outcome,
            cold_start: cold,
            error: None,
        })
    }

    #[test]
    fn prefix_tracker_advances_only_over_contiguous_completions() {
        let t = PrefixTracker::new(3, 0, false, None);
        t.emit(&span(0, OutcomeClass::Ok, true));
        t.emit(&span(2, OutcomeClass::Timeout, false)); // hole at 1
        let p = t.prefix();
        assert_eq!(p.work, 3);
        assert_eq!(p.watermark, 1, "seq 2 is beyond the hole");
        assert_eq!((p.completed, p.cold_starts), (1, 1));
        t.emit(&span(1, OutcomeClass::AppError, false)); // gap closes, 2 drains
        let p = t.prefix();
        assert_eq!(p.watermark, 3);
        assert_eq!(p.completed, 1);
        assert_eq!(p.errors, [1, 1, 0, 0]);
        assert!(p.is_consistent());
    }

    #[test]
    fn prefix_tracker_shifts_captured_spans() {
        let ring = Arc::new(RingSink::with_capacity(8));
        let t = PrefixTracker::new(0, 1_000, false, Some(Arc::clone(&ring)));
        t.emit(&span(0, OutcomeClass::Ok, false));
        match &ring.events()[0] {
            TelemetryEvent::Invocation(s) => {
                assert_eq!(s.target_us, 1_010);
                assert_eq!(s.dispatched_us, 1_020);
                assert_eq!(s.completed_us, 1_040);
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn prefix_tracker_filters_lifecycle_for_grants() {
        let ring = Arc::new(RingSink::with_capacity(8));
        let grant = PrefixTracker::new(1, 0, false, Some(Arc::clone(&ring)));
        grant.emit(&TelemetryEvent::RunEnd(faasrail_telemetry::RunSummary {
            issued: 1,
            completed: 1,
            errors: 0,
            aborted: false,
            wall_us: 1,
        }));
        assert!(ring.is_empty(), "grant replays must not duplicate run_start/run_end");
    }
}

//! The fleet agent: one process, one shard.
//!
//! An agent dials the coordinator, answers the clock probes, receives its
//! self-contained [`Assignment`] (shard trace + workload pool + replay
//! config — no local files needed), arms itself, and fires the replay at
//! the synchronized start instant. While replaying it streams cumulative
//! [`Snapshot`]s back on the progress cadence; at the end it sends the
//! final [`RunMetrics`] (plus the captured span log, when asked) in one
//! `Done` frame.
//!
//! Abort paths: a `Abort` frame or coordinator EOF mid-run sets the
//! replay's stop flag — the agent drains in-flight work, then still tries
//! to deliver `Done` with the partial, `aborted`-marked metrics.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use faasrail_loadgen::{
    replay_observed, Backend, InProcessBackend, ReplayConfig, ReplayInstruments,
};
use faasrail_telemetry::{EventSink, NullSink, Recorder, RingSink};

use crate::wire::{read_frame, wall_clock_us, write_frame, Assignment, FleetMessage};

/// Agent-side knobs (everything else arrives in the [`Assignment`]).
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Name reported in `Hello` (shows up in the coordinator's report).
    pub name: String,
    /// Connection attempts before giving up — agents usually start
    /// before (or racing) the coordinator.
    pub connect_attempts: u32,
    pub retry_delay: Duration,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            name: String::new(),
            connect_attempts: 40,
            retry_delay: Duration::from_millis(250),
        }
    }
}

/// What one agent run produced (the same data the coordinator received).
#[derive(Debug)]
pub struct AgentRun {
    pub shard: u32,
    pub assigned: u64,
    pub metrics: faasrail_loadgen::RunMetrics,
}

/// Dial the coordinator and serve one shard with the default backend
/// selection: in-process kernel execution. Custom backends (e.g. the
/// HTTP gateway client) go through [`run_agent_with`].
pub fn run_agent<A: ToSocketAddrs + Clone>(
    addr: A,
    cfg: &AgentConfig,
) -> io::Result<Option<AgentRun>> {
    run_agent_with(addr, cfg, |_| Ok(Arc::new(InProcessBackend)))
}

/// [`run_agent`] with a caller-chosen backend, constructed once the
/// assignment (and thus the `target`) is known. A backend that fails to
/// construct fails the agent *before* it acknowledges `Ready`, so the
/// coordinator sees a handshake error instead of a shard lost mid-run.
///
/// Returns `Ok(None)` if the coordinator aborted the run before start.
pub fn run_agent_with<A, F>(
    addr: A,
    cfg: &AgentConfig,
    make_backend: F,
) -> io::Result<Option<AgentRun>>
where
    A: ToSocketAddrs + Clone,
    F: FnOnce(&Assignment) -> io::Result<Arc<dyn Backend>>,
{
    let stream = connect_with_retry(addr, cfg)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream));

    {
        let mut w = writer.lock().unwrap();
        let hello = FleetMessage::Hello { name: cfg.name.clone(), wall_us: wall_clock_us() };
        write_frame(&mut *w, &hello)?;
    }

    // Handshake: probes come in unknown number, then Assign, then Start.
    let mut make_backend = Some(make_backend);
    let mut assigned: Option<(Assignment, Arc<dyn Backend>)> = None;
    let start_at_wall_us = loop {
        let eof = || io::Error::new(io::ErrorKind::UnexpectedEof, "coordinator hung up");
        match read_frame(&mut reader)?.ok_or_else(eof)? {
            FleetMessage::Probe { seq, wall_us } => {
                let reply =
                    FleetMessage::ProbeReply { seq, wall_us, agent_wall_us: wall_clock_us() };
                write_frame(&mut *writer.lock().unwrap(), &reply)?;
            }
            FleetMessage::Assign { assignment: a } => {
                let make = make_backend
                    .take()
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "double assign"))?;
                let backend = make(&a)?;
                let ready =
                    FleetMessage::Ready { shard: a.shard, requests: a.trace.requests.len() as u64 };
                write_frame(&mut *writer.lock().unwrap(), &ready)?;
                assigned = Some((a, backend));
            }
            FleetMessage::Start { at_agent_wall_us } => break at_agent_wall_us,
            FleetMessage::Abort { .. } => return Ok(None),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected message during handshake: {other:?}"),
                ))
            }
        }
    };
    let (assignment, backend) = assigned
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "start before assign"))?;
    let replay_cfg = ReplayConfig { pacing: assignment.pacing, workers: assignment.workers.max(1) };
    let recorder = Arc::new(Recorder::new(replay_cfg.workers + 1));
    let ring = assignment
        .capture_events
        .then(|| RingSink::with_capacity(assignment.trace.requests.len() + 16));
    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));

    wait_until_wall_us(start_at_wall_us, &stop);
    let run_start_wall_us = wall_clock_us();

    let metrics = std::thread::scope(|scope| {
        // Progress pump: cumulative snapshots on the assigned cadence.
        {
            let recorder = Arc::clone(&recorder);
            let writer = Arc::clone(&writer);
            let done = Arc::clone(&done);
            let every = Duration::from_millis(assignment.progress_every_ms.max(50));
            let shard = assignment.shard;
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    std::thread::sleep(every);
                    let msg = FleetMessage::Progress { shard, snapshot: recorder.snapshot() };
                    if write_frame(&mut *writer.lock().unwrap(), &msg).is_err() {
                        return; // coordinator gone; replay watcher will stop us
                    }
                }
            });
        }
        // Abort watcher: any coordinator frame other than silence means
        // stop; so does EOF or a broken connection.
        {
            let stop = Arc::clone(&stop);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                reader.get_ref().set_read_timeout(Some(Duration::from_millis(250))).ok();
                while !done.load(Ordering::Acquire) {
                    match read_frame(&mut reader) {
                        // Any frame here is Abort (or a protocol error) and
                        // EOF means the coordinator died: stop either way.
                        Ok(_) => {
                            stop.store(true, Ordering::Release);
                            return;
                        }
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            continue
                        }
                        Err(_) => {
                            stop.store(true, Ordering::Release);
                            return;
                        }
                    }
                }
            });
        }

        let sink: &dyn EventSink = match &ring {
            Some(r) => r,
            None => &NullSink,
        };
        let inst = ReplayInstruments { sink, recorder: Some(&recorder) };
        let metrics = replay_observed(
            &assignment.trace,
            &assignment.pool,
            &backend,
            &replay_cfg,
            &stop,
            &inst,
        );
        done.store(true, Ordering::Release);
        metrics
    });

    let events = ring.map(|r| r.events()).unwrap_or_default();
    {
        // Final cumulative progress, then the result. Best-effort: if the
        // coordinator is gone it already booked this shard as lost.
        let mut w = writer.lock().unwrap();
        let last =
            FleetMessage::Progress { shard: assignment.shard, snapshot: recorder.snapshot() };
        write_frame(&mut *w, &last).ok();
        let done_msg = FleetMessage::Done {
            shard: assignment.shard,
            run_start_wall_us,
            metrics: metrics.clone(),
            events,
        };
        write_frame(&mut *w, &done_msg)?;
    }

    Ok(Some(AgentRun {
        shard: assignment.shard,
        assigned: assignment.trace.requests.len() as u64,
        metrics,
    }))
}

fn connect_with_retry<A: ToSocketAddrs + Clone>(
    addr: A,
    cfg: &AgentConfig,
) -> io::Result<TcpStream> {
    let attempts = cfg.connect_attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        match TcpStream::connect(addr.clone()) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(cfg.retry_delay);
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::new(io::ErrorKind::Other, "no connect attempts")))
}

/// Sleep until the agent wall clock reaches `target_us` (coarse sleep to
/// within 5ms, then fine 200µs steps — start skew stays well under the
/// pacer's own accuracy). Bails early if `stop` is set.
fn wait_until_wall_us(target_us: u64, stop: &AtomicBool) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let now = wall_clock_us();
        if now >= target_us {
            return;
        }
        let remaining = target_us - now;
        if remaining > 5_000 {
            std::thread::sleep(Duration::from_micros(remaining - 5_000));
        } else {
            std::thread::sleep(Duration::from_micros(remaining.min(200)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_until_reaches_target() {
        let target = wall_clock_us() + 20_000;
        wait_until_wall_us(target, &AtomicBool::new(false));
        assert!(wall_clock_us() >= target);
    }

    #[test]
    fn wait_until_past_target_returns_immediately() {
        let before = wall_clock_us();
        wait_until_wall_us(before.saturating_sub(1_000_000), &AtomicBool::new(false));
        assert!(wall_clock_us() - before < 1_000_000, "no sleep for past targets");
    }

    #[test]
    fn connect_retry_reports_last_error() {
        // Port 1 on localhost: reliably refused.
        let cfg = AgentConfig {
            connect_attempts: 2,
            retry_delay: Duration::from_millis(1),
            ..AgentConfig::default()
        };
        assert!(connect_with_retry("127.0.0.1:1", &cfg).is_err());
    }
}

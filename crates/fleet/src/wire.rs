//! The fleet wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every frame is a 4-byte big-endian body length followed by one
//! serialized [`FleetMessage`]. JSON keeps the protocol debuggable with
//! `nc` and versionable by field addition (unknown fields are a decode
//! error only for the sender's own mistakes — serde ignores extras);
//! the length prefix keeps framing independent of the payload so a
//! partial read never resynchronizes mid-object.
//!
//! The conversation, coordinator-side view:
//!
//! ```text
//! agent → Hello                 (name + agent wall clock)
//! coord → Probe × N             (clock-offset sampling)
//! agent → ProbeReply × N
//! coord → Assign                (shard trace + pool + replay config)
//! agent → Ready
//! coord → Start                 (epoch, already rebased to agent clock)
//! agent → Progress × many       (cumulative Snapshot, every progress window)
//! agent → Done                  (final RunMetrics + optional event log)
//! ```
//!
//! Either side may send [`FleetMessage::Abort`] at any point; agents treat
//! coordinator EOF as an implicit abort, and the coordinator treats agent
//! EOF before `Done` as a lost shard.

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use faasrail_core::RequestTrace;
use faasrail_loadgen::{Pacing, RunMetrics};
use faasrail_telemetry::{Snapshot, TelemetryEvent};
use faasrail_workloads::WorkloadPool;

/// Upper bound on one frame body. A shard assignment carries its request
/// trace inline, so frames are large by design — but a corrupt length
/// prefix must not trigger a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// One shard's complete marching orders. Self-contained on purpose: the
/// agent needs no local spec, pool, or trace files — everything it will
/// replay arrives in this message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Assignment {
    /// Shard index in `0..shards`, also the agent's identity in reports.
    pub shard: u32,
    /// Total shard count for this run.
    pub shards: u32,
    pub pacing: Pacing,
    /// Replay worker threads on the agent.
    pub workers: usize,
    /// Capture and return the full span log in `Done` (costs memory and
    /// one large frame; enables the merged cross-agent report).
    pub capture_events: bool,
    /// Progress snapshot cadence, milliseconds.
    pub progress_every_ms: u64,
    /// Gateway URL for over-the-wire replay; `None` replays in-process.
    pub target: Option<String>,
    /// The shard-filtered request trace (full `duration_minutes`, subset
    /// of requests).
    pub trace: RequestTrace,
    pub pool: WorkloadPool,
}

/// Every message that crosses the coordinator/agent link.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "msg", rename_all = "snake_case")]
pub enum FleetMessage {
    /// Agent introduction, first frame on a fresh connection.
    Hello {
        name: String,
        /// Agent wall clock (unix micros) at send time.
        wall_us: u64,
    },
    /// Clock-offset probe (coordinator → agent). `wall_us` is the
    /// coordinator's send instant, echoed back for matching.
    Probe {
        seq: u32,
        wall_us: u64,
    },
    /// Probe echo (agent → coordinator) with the agent's own clock.
    ProbeReply {
        seq: u32,
        wall_us: u64,
        agent_wall_us: u64,
    },
    Assign {
        assignment: Assignment,
    },
    /// Agent acknowledges the assignment and is armed to start.
    Ready {
        shard: u32,
        requests: u64,
    },
    /// Fire the replay when the *agent's* wall clock reaches this instant
    /// (the coordinator already applied the measured offset, so one epoch
    /// becomes one synchronized start across skewed machines).
    Start {
        at_agent_wall_us: u64,
    },
    /// Cumulative live counters; the coordinator windows them itself.
    Progress {
        shard: u32,
        snapshot: Snapshot,
    },
    /// Final shard result. `run_start_wall_us` is the agent wall clock at
    /// its replay's t=0, so span timestamps (run-relative micros) can be
    /// rebased onto the fleet epoch.
    Done {
        shard: u32,
        run_start_wall_us: u64,
        metrics: RunMetrics,
        events: Vec<TelemetryEvent>,
    },
    /// Cooperative cancellation, either direction.
    Abort {
        reason: String,
    },
}

/// Serialize `msg` as one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, msg: &FleetMessage) -> io::Result<()> {
    let body = serde_json::to_vec(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e}")))?;
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds cap", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Read one frame. `Ok(None)` means the peer closed the connection
/// cleanly *between* frames; EOF mid-frame is an error (truncated data).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<FleetMessage>> {
    let mut len_buf = [0u8; 4];
    if !fill_or_eof(r, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let msg = serde_json::from_slice(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("decode: {e}")))?;
    Ok(Some(msg))
}

/// Fill `buf` completely, or report a clean EOF if the stream ended
/// before the first byte.
fn fill_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Current wall clock as unix microseconds — the fleet's shared timebase.
pub fn wall_clock_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let msgs = vec![
            FleetMessage::Hello { name: "agent-0".into(), wall_us: 123 },
            FleetMessage::Probe { seq: 7, wall_us: 456 },
            FleetMessage::ProbeReply { seq: 7, wall_us: 456, agent_wall_us: 789 },
            FleetMessage::Start { at_agent_wall_us: 1_000_000 },
            FleetMessage::Abort { reason: "operator interrupt".into() },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for want in &msgs {
            let got = read_frame(&mut cursor).unwrap().expect("frame present");
            assert_eq!(serde_json::to_string(&got).unwrap(), serde_json::to_string(want).unwrap());
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after last frame");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &FleetMessage::Probe { seq: 0, wall_us: 1 }).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"garbage");
        let mut cursor = Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn messages_are_tagged_snake_case_json() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &FleetMessage::Ready { shard: 1, requests: 42 }).unwrap();
        let json = std::str::from_utf8(&buf[4..]).unwrap();
        assert!(json.contains("\"msg\":\"ready\""), "{json}");
    }

    /// An agent that never recorded lateness (unpaced) or service times
    /// used to ship `min_seen: Infinity` inside its final metrics; JSON has
    /// no infinity, so the coordinator failed to parse the `Done` frame and
    /// booked a *completed* shard as lost. Empty histograms must round-trip.
    #[test]
    fn done_frame_with_empty_histograms_roundtrips() {
        let mut metrics = faasrail_loadgen::RunMetrics::new();
        metrics.issued = 10;
        metrics.completed = 10;
        metrics.response.record(0.25);
        // `service` and `lateness` stay empty on purpose.
        let msg =
            FleetMessage::Done { shard: 0, run_start_wall_us: 1, metrics, events: Vec::new() };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let mut cursor = Cursor::new(buf);
        let got = read_frame(&mut cursor).unwrap().expect("frame parses");
        match got {
            FleetMessage::Done { metrics: m, .. } => {
                assert_eq!(m.completed, 10);
                assert_eq!(m.service.total(), 0);
                assert_eq!(m.response.min(), 0.25);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }
}

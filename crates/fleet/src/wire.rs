//! The fleet wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every frame is a 4-byte big-endian body length followed by one
//! serialized [`FleetMessage`]. JSON keeps the protocol debuggable with
//! `nc` and versionable by field addition (unknown fields are a decode
//! error only for the sender's own mistakes — serde ignores extras);
//! the length prefix keeps framing independent of the payload so a
//! partial read never resynchronizes mid-object.
//!
//! The conversation, coordinator-side view (protocol v2):
//!
//! ```text
//! agent → Hello                 (name, proto version, optional resume token)
//! coord → HelloAck              (proto version, resume token, lease window)
//! coord → Probe × N             (clock-offset sampling)
//! agent → ProbeReply × N
//! coord → Assign                (shard trace + pool + replay config)
//! agent → Ready
//! coord → Start                 (epoch, already rebased to agent clock)
//! agent → Progress × many       (Snapshot + per-work prefixes + pacing lag)
//! coord → Reassign × any        (a dead shard's remainder, mid-run)
//! agent → ReassignAck × any
//! coord → Finish                (all work accounted — report and exit)
//! agent → Done                  (final RunMetrics + optional event log)
//! ```
//!
//! Either side may send [`FleetMessage::Abort`] at any point. A version
//! mismatch in `Hello` is answered with a clean `Abort {reason}` instead
//! of a mid-run decode error. Agents treat coordinator EOF as a lost link
//! (they rejoin with their resume token); the coordinator treats agent EOF
//! before `Done` as a crashed shard and a missed lease deadline (no frame
//! for longer than `lease_ms`) as a stalled one.

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use faasrail_core::RequestTrace;
use faasrail_loadgen::{Pacing, RunMetrics};
use faasrail_telemetry::{Snapshot, TelemetryEvent};
use faasrail_workloads::WorkloadPool;

/// Upper bound on one frame body. A shard assignment carries its request
/// trace inline, so frames are large by design — but a corrupt length
/// prefix must not trigger a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Fleet wire-protocol version. Bumped on incompatible changes; a
/// coordinator answers a mismatched [`FleetMessage::Hello`] with a clean
/// `Abort {reason}` naming both versions, so mixed deployments fail at
/// handshake instead of as a decode error mid-run.
///
/// v1: PR 5 static shards. v2: `HelloAck`, per-work progress prefixes,
/// `Reassign`/`ReassignAck`/`Finish` (elastic control plane).
pub const PROTOCOL_VERSION: u32 = 2;

/// One shard's complete marching orders. Self-contained on purpose: the
/// agent needs no local spec, pool, or trace files — everything it will
/// replay arrives in this message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Assignment {
    /// Shard index in `0..shards`, also the agent's identity in reports.
    pub shard: u32,
    /// Total shard count for this run.
    pub shards: u32,
    pub pacing: Pacing,
    /// Replay worker threads on the agent.
    pub workers: usize,
    /// Capture and return the full span log in `Done` (costs memory and
    /// one large frame; enables the merged cross-agent report).
    pub capture_events: bool,
    /// Progress snapshot cadence, milliseconds.
    pub progress_every_ms: u64,
    /// Gateway URL for over-the-wire replay; `None` replays in-process.
    pub target: Option<String>,
    /// The shard-filtered request trace (full `duration_minutes`, subset
    /// of requests).
    pub trace: RequestTrace,
    pub pool: WorkloadPool,
    /// Span-capture ring capacity the agent should provision. Reassigned
    /// work can grow an agent's span log well past its own assignment, so
    /// the coordinator sizes the ring for the whole offered schedule.
    /// `0` (and absent, for v1 senders) means "own assignment only".
    #[serde(default)]
    pub event_capacity: u64,
}

/// Cumulative contiguous-completion state of one work item (an agent's
/// original shard or a reassignment grant), shipped inside `Progress`.
///
/// `watermark` is the length of the *finished prefix* of the work's trace:
/// every request with index `< watermark` has a final outcome, counted in
/// the per-class fields below. Requests beyond the watermark may also have
/// finished (out of order) but are not counted here — on agent loss the
/// coordinator re-executes them with the remainder, trading (bounded)
/// double execution for exact accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkPrefix {
    /// Work id: the agent's shard index for its original assignment, or
    /// the grant id for reassigned work.
    pub work: u64,
    /// Finished-prefix length (requests with a final outcome, contiguous
    /// from the start of the work's trace).
    pub watermark: u64,
    /// Successes within the prefix.
    pub completed: u64,
    /// `[app_error, timeout, transport, shed]` within the prefix.
    pub errors: [u64; 4],
    /// Cold starts within the prefix.
    pub cold_starts: u64,
}

impl WorkPrefix {
    /// `completed + errors == watermark` must hold for a well-formed
    /// prefix (every request in the prefix has exactly one outcome).
    pub fn is_consistent(&self) -> bool {
        self.completed + self.errors.iter().sum::<u64>() == self.watermark
    }
}

/// One reassignment: part of a dead shard's remaining schedule, handed to
/// a survivor mid-run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grant {
    /// Unique work id for this grant (distinct from every shard index and
    /// every other grant in the run).
    pub id: u64,
    /// The shard that originally owned this work (for reports).
    pub origin_shard: u32,
    /// Trace time already elapsed fleet-wide when the grant was issued,
    /// milliseconds. The survivor replays the grant with
    /// [`faasrail_loadgen::ResumeSpec`] at this offset: overdue requests
    /// fire immediately and book their full deficit as lateness, future
    /// requests fire at their original schedule positions.
    pub elapsed_ms: u64,
    /// The remainder trace (original `at_ms` stamps, so every invocation
    /// stays in its original offered-minute bucket).
    pub trace: RequestTrace,
}

/// Every message that crosses the coordinator/agent link.
// One frame of this type lives at a time per link, so the size skew
// between `Done` and the control frames costs nothing in practice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "msg", rename_all = "snake_case")]
pub enum FleetMessage {
    /// Agent introduction, first frame on a fresh connection.
    Hello {
        name: String,
        /// Agent wall clock (unix micros) at send time.
        wall_us: u64,
        /// Agent's [`PROTOCOL_VERSION`]. A v1 agent doesn't send the
        /// field at all, so it decodes as 0 — normalize with
        /// [`effective_proto`] before comparing.
        #[serde(default)]
        proto: u32,
        /// Resume token from a previous `HelloAck`, present when this
        /// connection is a rejoin after a lost link. Idempotent: the
        /// coordinator re-admits the agent as fresh capacity regardless of
        /// how many times the same token reconnects.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        resume_token: Option<String>,
    },
    /// Coordinator's answer to `Hello`, first frame in the other
    /// direction. Carries the lease the agent must beat with `Progress`
    /// frames and the token it should present on rejoin.
    HelloAck {
        proto: u32,
        /// Opaque rejoin token, unique per admitted connection.
        token: String,
        /// Liveness lease: the coordinator declares the agent stalled
        /// after this many milliseconds without a frame.
        lease_ms: u64,
    },
    /// Clock-offset probe (coordinator → agent). `wall_us` is the
    /// coordinator's send instant, echoed back for matching.
    Probe {
        seq: u32,
        wall_us: u64,
    },
    /// Probe echo (agent → coordinator) with the agent's own clock.
    ProbeReply {
        seq: u32,
        wall_us: u64,
        agent_wall_us: u64,
    },
    Assign {
        assignment: Assignment,
    },
    /// Agent acknowledges the assignment and is armed to start.
    Ready {
        shard: u32,
        requests: u64,
    },
    /// Fire the replay when the *agent's* wall clock reaches this instant
    /// (the coordinator already applied the measured offset, so one epoch
    /// becomes one synchronized start across skewed machines).
    Start {
        at_agent_wall_us: u64,
    },
    /// Cumulative live counters; the coordinator windows them itself.
    Progress {
        shard: u32,
        snapshot: Snapshot,
        /// Contiguous-completion state of every work item this agent
        /// holds (its shard plus any grants) — the high-water marks the
        /// coordinator reshards from if this agent dies.
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        prefixes: Vec<WorkPrefix>,
        /// Most recent dispatch lateness across the agent's replays,
        /// milliseconds (backpressure signal).
        #[serde(default)]
        lag_ms: u64,
        /// Worst dispatch lateness seen so far, milliseconds.
        #[serde(default)]
        max_lag_ms: u64,
        /// True when every work item this agent holds has fully finished
        /// and it is waiting for more grants or `Finish`.
        #[serde(default)]
        idle: bool,
    },
    /// Reassign part of a dead shard's remainder to this agent (mid-run,
    /// coordinator → agent).
    Reassign {
        grant: Grant,
    },
    /// Agent accepted a grant and armed its replay.
    ReassignAck {
        shard: u32,
        /// The grant id being acknowledged.
        grant: u64,
        requests: u64,
    },
    /// All offered work is accounted for — agents report `Done` and exit.
    Finish,
    /// Final shard result. `run_start_wall_us` is the agent wall clock at
    /// its replay's t=0, so span timestamps (run-relative micros) can be
    /// rebased onto the fleet epoch.
    Done {
        shard: u32,
        run_start_wall_us: u64,
        metrics: RunMetrics,
        events: Vec<TelemetryEvent>,
    },
    /// Cooperative cancellation, either direction.
    Abort {
        reason: String,
    },
}

/// Normalize a wire-decoded protocol version: pre-versioning (v1) agents
/// send no `proto` field, which decodes as 0.
pub fn effective_proto(proto: u32) -> u32 {
    if proto == 0 {
        1
    } else {
        proto
    }
}

/// Serialize `msg` as one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, msg: &FleetMessage) -> io::Result<()> {
    let body = serde_json::to_vec(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e}")))?;
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds cap", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Read one frame. `Ok(None)` means the peer closed the connection
/// cleanly *between* frames; EOF mid-frame is an error (truncated data).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<FleetMessage>> {
    let mut len_buf = [0u8; 4];
    if !fill_or_eof(r, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let msg = serde_json::from_slice(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("decode: {e}")))?;
    Ok(Some(msg))
}

/// Fill `buf` completely, or report a clean EOF if the stream ended
/// before the first byte.
fn fill_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Current wall clock as unix microseconds — the fleet's shared timebase.
pub fn wall_clock_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let msgs = vec![
            FleetMessage::Hello {
                name: "agent-0".into(),
                wall_us: 123,
                proto: PROTOCOL_VERSION,
                resume_token: Some("tok-3".into()),
            },
            FleetMessage::HelloAck {
                proto: PROTOCOL_VERSION,
                token: "tok-3".into(),
                lease_ms: 5_000,
            },
            FleetMessage::Probe { seq: 7, wall_us: 456 },
            FleetMessage::ProbeReply { seq: 7, wall_us: 456, agent_wall_us: 789 },
            FleetMessage::Start { at_agent_wall_us: 1_000_000 },
            FleetMessage::Reassign {
                grant: Grant {
                    id: 9,
                    origin_shard: 2,
                    elapsed_ms: 61_000,
                    trace: faasrail_core::RequestTrace { duration_minutes: 3, requests: vec![] },
                },
            },
            FleetMessage::ReassignAck { shard: 1, grant: 9, requests: 0 },
            FleetMessage::Finish,
            FleetMessage::Abort { reason: "operator interrupt".into() },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for want in &msgs {
            let got = read_frame(&mut cursor).unwrap().expect("frame present");
            assert_eq!(serde_json::to_string(&got).unwrap(), serde_json::to_string(want).unwrap());
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after last frame");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &FleetMessage::Probe { seq: 0, wall_us: 1 }).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"garbage");
        let mut cursor = Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// A v1 `Hello` has no `proto` field; it must decode as version 1
    /// (so the coordinator can answer with a clean version-mismatch
    /// abort), and a v1 `Progress` without prefixes must still parse.
    #[test]
    fn v1_frames_decode_with_defaults() {
        let hello: FleetMessage =
            serde_json::from_str(r#"{"msg":"hello","name":"old","wall_us":5}"#).unwrap();
        match hello {
            FleetMessage::Hello { proto, resume_token, .. } => {
                assert_eq!(effective_proto(proto), 1);
                assert_eq!(resume_token, None);
            }
            other => panic!("wrong message: {other:?}"),
        }
        let snap = serde_json::to_string(&Snapshot::default()).unwrap();
        let line = format!(r#"{{"msg":"progress","shard":0,"snapshot":{snap}}}"#);
        let progress: FleetMessage = serde_json::from_str(&line).expect("v1 progress parses");
        match progress {
            FleetMessage::Progress { prefixes, lag_ms, idle, .. } => {
                assert!(prefixes.is_empty());
                assert_eq!(lag_ms, 0);
                assert!(!idle);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn work_prefix_consistency() {
        let p = WorkPrefix {
            work: 3,
            watermark: 10,
            completed: 7,
            errors: [1, 1, 1, 0],
            cold_starts: 2,
        };
        assert!(p.is_consistent());
        let bad = WorkPrefix { watermark: 10, completed: 7, ..WorkPrefix::default() };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn messages_are_tagged_snake_case_json() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &FleetMessage::Ready { shard: 1, requests: 42 }).unwrap();
        let json = std::str::from_utf8(&buf[4..]).unwrap();
        assert!(json.contains("\"msg\":\"ready\""), "{json}");
    }

    /// An agent that never recorded lateness (unpaced) or service times
    /// used to ship `min_seen: Infinity` inside its final metrics; JSON has
    /// no infinity, so the coordinator failed to parse the `Done` frame and
    /// booked a *completed* shard as lost. Empty histograms must round-trip.
    #[test]
    fn done_frame_with_empty_histograms_roundtrips() {
        let mut metrics = faasrail_loadgen::RunMetrics::new();
        metrics.issued = 10;
        metrics.completed = 10;
        metrics.response.record(0.25);
        // `service` and `lateness` stay empty on purpose.
        let msg =
            FleetMessage::Done { shard: 0, run_start_wall_us: 1, metrics, events: Vec::new() };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let mut cursor = Cursor::new(buf);
        let got = read_frame(&mut cursor).unwrap().expect("frame parses");
        match got {
            FleetMessage::Done { metrics: m, .. } => {
                assert_eq!(m.completed, 10);
                assert_eq!(m.service.total(), 0);
                assert_eq!(m.response.min(), 0.25);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }
}

//! The coordinator's embedded HTTP observability plane.
//!
//! A tiny blocking HTTP/1.1 server built on the gateway's framing
//! ([`faasrail_gateway::http`]) — no new dependencies, same keep-alive and
//! `Content-Length` semantics the rest of the stack speaks. It serves the
//! [`History`] store the coordinator's control loop publishes into:
//!
//! * `GET /state?since=N` — JSON [`StateView`]: windowed fleet samples
//!   newer than cursor `N`, latest per-agent lease states, the
//!   reassignment timeline, and the next cursor to poll with;
//! * `GET /metrics` — fleet-wide Prometheus 0.0.4 exposition (the merged
//!   cumulative snapshot via [`Snapshot::to_prometheus`]) plus per-agent
//!   label vectors — agent names are arbitrary strings, which is exactly
//!   why [`PromText`] escapes label values;
//! * `GET /healthz` — agent counts by lease state, mirroring the
//!   gateway's `/healthz` JSON shape so probes are uniform across tiers;
//! * `GET /dashboard` (and `/`) — a single self-contained HTML page
//!   (inline JS polling `/state`, canvas sparklines, per-agent table,
//!   reassignment log; no external assets).
//!
//! [`fetch_state`] + [`render_top`] are the client half: `faasrail fleet
//! top` polls `/state` over the same framing and renders an ANSI terminal
//! view of the identical data, so SSH-only operators see exactly what the
//! dashboard shows.

use std::fmt::Write as _;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use faasrail_gateway::http;
use faasrail_telemetry::PromText;

use crate::history::{History, StateView, DEFAULT_HISTORY_CAPACITY};

/// The embedded dashboard page, compiled into the binary.
pub const DASHBOARD_HTML: &str = include_str!("dashboard.html");

/// A bound (but not yet serving) console listener plus its history store.
/// Bind before the run starts so `port 0` resolves early enough to print;
/// [`ConsoleServer::start`] spawns the accept loop.
pub struct ConsoleServer {
    listener: TcpListener,
    history: Arc<History>,
}

/// Handle to a running console; [`ConsoleHandle::stop`] joins the accept
/// loop. Per-connection handler threads are detached and exit on their
/// own read timeout once the listener is gone.
pub struct ConsoleHandle {
    stop: Arc<AtomicBool>,
    accept_loop: JoinHandle<()>,
}

impl ConsoleHandle {
    pub fn stop(self) {
        self.stop.store(true, Ordering::Release);
        self.accept_loop.join().ok();
    }
}

impl ConsoleServer {
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<ConsoleServer> {
        ConsoleServer::bind_with_capacity(addr, DEFAULT_HISTORY_CAPACITY)
    }

    pub fn bind_with_capacity<A: ToSocketAddrs>(
        addr: A,
        capacity: usize,
    ) -> io::Result<ConsoleServer> {
        Ok(ConsoleServer {
            listener: TcpListener::bind(addr)?,
            history: Arc::new(History::new(capacity)),
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The store the coordinator publishes into and connections read from.
    pub fn history(&self) -> Arc<History> {
        Arc::clone(&self.history)
    }

    /// Spawn the accept loop. Connections are handled one thread each —
    /// this is an ops endpoint polled by a handful of humans and scrapers,
    /// not a data path.
    pub fn start(&self) -> io::Result<ConsoleHandle> {
        let listener = self.listener.try_clone()?;
        listener.set_nonblocking(true)?;
        let history = Arc::clone(&self.history);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_loop = thread::spawn(move || {
            while !stop_accept.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let history = Arc::clone(&history);
                        thread::spawn(move || serve_connection(stream, &history));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(25)),
                }
            }
        });
        Ok(ConsoleHandle { stop, accept_loop })
    }
}

fn serve_connection(stream: TcpStream, history: &History) {
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(Duration::from_secs(5))).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) | Err(_) => return, // clean close, timeout, or garbage
        };
        let keep_alive = req.keep_alive;
        let (status, content_type, body) = respond(history, &req.method, &req.path);
        if http::write_response(&mut writer, status, content_type, body.as_bytes(), keep_alive)
            .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

/// Pure request router: method + path (with query string) in, response out.
fn respond(history: &History, method: &str, raw_path: &str) -> (u16, &'static str, String) {
    let (path, query) = match raw_path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (raw_path, ""),
    };
    if method != "GET" {
        return (405, "application/json", "{\"error\":\"method not allowed\"}".into());
    }
    match path {
        "/state" => {
            let since = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("since="))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            let view = history.since(since);
            match serde_json::to_string(&view) {
                Ok(body) => (200, "application/json", body),
                Err(e) => (500, "application/json", format!("{{\"error\":\"{e}\"}}")),
            }
        }
        "/metrics" => (200, faasrail_telemetry::prometheus::CONTENT_TYPE, metrics_text(history)),
        "/healthz" => (200, "application/json", healthz_json(history)),
        "/" | "/dashboard" => (200, "text/html; charset=utf-8", DASHBOARD_HTML.to_string()),
        _ => (404, "application/json", "{\"error\":\"not found\"}".into()),
    }
}

/// Fleet-wide Prometheus exposition: merged cumulative counters and the
/// response histogram under `faasrail_fleet_…`, then per-agent label
/// vectors and lease-state gauges.
fn metrics_text(history: &History) -> String {
    let mut body = history.cumulative().to_prometheus("faasrail_fleet");
    let agents = history.agents();
    let counts = history.health_counts();
    let (reassignments, abort_reasons) = history.timeline();

    let mut p = PromText::new();
    p.gauge("faasrail_fleet_agents", "Agent slots known to the coordinator.", agents.len() as f64);
    p.gauge_vec(
        "faasrail_fleet_agents_by_state",
        "Agent slots by lease state.",
        "state",
        &[
            ("alive", counts.alive as f64),
            ("done", counts.done as f64),
            ("stalled", counts.stalled as f64),
            ("crashed", counts.crashed as f64),
            ("aborted", counts.aborted as f64),
            ("rejoined", counts.rejoined as f64),
        ],
    );
    let issued: Vec<(&str, u64)> = agents.iter().map(|a| (a.name.as_str(), a.issued)).collect();
    p.counter_vec(
        "faasrail_fleet_agent_issued_total",
        "Requests dispatched, per agent.",
        "agent",
        &issued,
    );
    let completed: Vec<(&str, u64)> =
        agents.iter().map(|a| (a.name.as_str(), a.completed)).collect();
    p.counter_vec(
        "faasrail_fleet_agent_completed_total",
        "Requests finished successfully, per agent.",
        "agent",
        &completed,
    );
    let errors: Vec<(&str, u64)> = agents.iter().map(|a| (a.name.as_str(), a.errors)).collect();
    p.counter_vec(
        "faasrail_fleet_agent_errors_total",
        "Requests finished unsuccessfully, per agent.",
        "agent",
        &errors,
    );
    let lag: Vec<(&str, f64)> = agents.iter().map(|a| (a.name.as_str(), a.lag_ms as f64)).collect();
    p.gauge_vec(
        "faasrail_fleet_agent_lag_ms",
        "Last reported pacing lag, per agent.",
        "agent",
        &lag,
    );
    let up: Vec<(&str, f64)> =
        agents.iter().map(|a| (a.name.as_str(), if a.is_live() { 1.0 } else { 0.0 })).collect();
    p.gauge_vec("faasrail_fleet_agent_up", "1 while the agent's lease is live.", "agent", &up);
    p.counter(
        "faasrail_fleet_reassignments_total",
        "Mid-run work reassignments issued.",
        reassignments.len() as u64,
    );
    p.counter(
        "faasrail_fleet_abort_reasons_total",
        "Distinct abort reasons recorded.",
        abort_reasons.len() as u64,
    );
    body.push_str(p.as_str());
    body
}

/// `/healthz` mirrors the gateway's shape: a flat JSON object leading with
/// `"status":"ok"`, followed by the tier's vital signs.
fn healthz_json(history: &History) -> String {
    let c = history.health_counts();
    let (reassignments, _) = history.timeline();
    format!(
        "{{\"status\":\"ok\",\"agents\":{{\"alive\":{},\"done\":{},\"stalled\":{},\
         \"crashed\":{},\"aborted\":{},\"rejoined\":{}}},\"samples\":{},\"reassignments\":{}}}",
        c.alive,
        c.done,
        c.stalled,
        c.crashed,
        c.aborted,
        c.rejoined,
        history.len(),
        reassignments.len(),
    )
}

/// Fetch one [`StateView`] from a console at `addr` (the client half of
/// `GET /state?since=N`, over the same HTTP framing the server uses).
pub fn fetch_state(addr: &str, since: u64) -> io::Result<StateView> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    http::write_request(
        &mut writer,
        "GET",
        &format!("/state?since={since}"),
        addr,
        "application/json",
        b"",
        false,
    )?;
    let mut reader = BufReader::new(stream);
    let resp = http::read_response(&mut reader)?;
    if resp.status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("console returned HTTP {}", resp.status),
        ));
    }
    serde_json::from_slice(&resp.body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad /state body: {e}")))
}

const SPARK_BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(values: &[f64]) -> String {
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return values.iter().map(|_| SPARK_BARS[0]).collect();
    }
    values.iter().map(|v| SPARK_BARS[(((v / max) * 7.0).round() as usize).min(7)]).collect()
}

/// Render a [`StateView`] as a plain-text terminal dashboard — the same
/// data `/dashboard` shows, for `faasrail fleet top`. Returns text without
/// cursor-control sequences; the CLI prepends the clear-screen escape.
pub fn render_top(view: &StateView) -> String {
    let mut out = String::with_capacity(2048);
    let live = view.agents.iter().filter(|a| a.is_live()).count();
    let _ = writeln!(
        out,
        "faasrail fleet top — t={:.1}s · {} agents ({} live) · {} reassignments{}",
        view.now_ms as f64 / 1e3,
        view.agents.len(),
        live,
        view.reassignments.len(),
        if view.dropped { " · history gap" } else { "" },
    );
    if let Some(total) = &view.total {
        let _ = writeln!(out, "total   {}", total.summary());
    }
    if let Some(last) = view.samples.last() {
        let _ = writeln!(out, "window  {}", last.window.summary());
    }
    let recent: Vec<&crate::history::FleetSample> =
        view.samples.iter().rev().take(60).rev().collect();
    if !recent.is_empty() {
        let offered: Vec<f64> = recent.iter().map(|s| s.window.offered_rps).collect();
        let achieved: Vec<f64> = recent.iter().map(|s| s.window.achieved_rps).collect();
        let peak = offered.iter().cloned().fold(0.0_f64, f64::max);
        let _ = writeln!(out, "offered  {} (peak {peak:.1} rps)", sparkline(&offered));
        let _ = writeln!(out, "achieved {}", sparkline(&achieved));
    }
    let _ = writeln!(
        out,
        "\n{:<20} {:>5} {:<24} {:>9} {:>9} {:>7} {:>6} {:>7} {:>7} {:>6}",
        "AGENT", "SHARD", "STATE", "ISSUED", "DONE", "ERRORS", "SHED", "LAG", "MAXLAG", "GRANTS",
    );
    for a in &view.agents {
        let _ = writeln!(
            out,
            "{:<20} {:>5} {:<24} {:>9} {:>9} {:>7} {:>6} {:>7} {:>7} {:>6}",
            a.name,
            a.shard,
            a.status,
            a.issued,
            a.completed,
            a.errors,
            a.shed,
            a.lag_ms,
            a.max_lag_ms,
            a.granted,
        );
    }
    if !view.reassignments.is_empty() {
        let _ = writeln!(out, "\nreassignments:");
        for r in &view.reassignments {
            let _ = writeln!(
                out,
                "  +{:.1}s  shard {} → shard {}  work {}  {} req  ({})",
                r.at_us as f64 / 1e6,
                r.from_shard,
                r.to_shard,
                r.work,
                r.requests,
                r.reason,
            );
        }
    }
    if !view.abort_reasons.is_empty() {
        let _ = writeln!(out, "\nabort reasons:");
        for reason in &view.abort_reasons {
            let _ = writeln!(out, "  {reason}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::AgentState;
    use faasrail_telemetry::{ReassignSpan, Snapshot};

    fn seeded_history() -> History {
        let h = History::new(16);
        let mut cumulative = Snapshot::default();
        for i in 1..=5u64 {
            cumulative.issued += 10;
            cumulative.completed += 9;
            cumulative.errors[3] += 1;
            cumulative.response.record(0.020);
            h.publish(
                i * 100,
                &cumulative,
                vec![
                    AgentState {
                        name: "agent \"a\"".into(),
                        shard: 0,
                        status: "live".into(),
                        rejoined: false,
                        granted: 1,
                        lag_ms: 3,
                        max_lag_ms: 9,
                        issued: cumulative.issued / 2,
                        completed: cumulative.completed / 2,
                        errors: 0,
                        shed: 0,
                    },
                    AgentState {
                        name: "agent-b".into(),
                        shard: 1,
                        status: "crash".into(),
                        rejoined: false,
                        granted: 0,
                        lag_ms: 0,
                        max_lag_ms: 0,
                        issued: cumulative.issued / 2,
                        completed: cumulative.completed / 2,
                        errors: 1,
                        shed: 1,
                    },
                ],
            );
        }
        h.set_timeline(
            vec![ReassignSpan {
                at_us: 1_500_000,
                from_shard: 1,
                to_shard: 0,
                work: 1 << 32,
                requests: 42,
                reason: "crash".into(),
            }],
            vec!["shard 1: lost".into()],
        );
        h
    }

    #[test]
    fn router_serves_all_four_endpoints() {
        let h = seeded_history();
        let (status, ct, body) = respond(&h, "GET", "/state?since=0");
        assert_eq!((status, ct), (200, "application/json"));
        let view: StateView = serde_json::from_str(&body).unwrap();
        assert_eq!(view.samples.len(), 5);
        assert_eq!(view.agents.len(), 2);

        let (status, ct, body) = respond(&h, "GET", "/metrics");
        assert_eq!(status, 200);
        assert_eq!(ct, faasrail_telemetry::prometheus::CONTENT_TYPE);
        assert!(body.contains("faasrail_fleet_issued_total 50"), "{body}");
        // The quoted agent name must arrive escaped.
        assert!(body.contains("agent=\"agent \\\"a\\\"\""), "{body}");
        assert!(body.contains("faasrail_fleet_reassignments_total 1"), "{body}");

        let (status, _, body) = respond(&h, "GET", "/healthz");
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"alive\":1"), "{body}");
        assert!(body.contains("\"crashed\":1"), "{body}");

        let (status, ct, body) = respond(&h, "GET", "/dashboard");
        assert_eq!((status, ct), (200, "text/html; charset=utf-8"));
        assert!(body.contains("<canvas"), "dashboard must be self-contained");
        assert!(!body.contains("http://") && !body.contains("https://"), "no external assets");

        assert_eq!(respond(&h, "GET", "/nope").0, 404);
        assert_eq!(respond(&h, "POST", "/state").0, 405);
    }

    #[test]
    fn state_cursor_pages_through_the_router() {
        let h = seeded_history();
        let (_, _, body) = respond(&h, "GET", "/state?since=3");
        let view: StateView = serde_json::from_str(&body).unwrap();
        assert_eq!(view.samples.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(view.next, 5);
    }

    #[test]
    fn render_top_shows_agents_and_timeline() {
        let h = seeded_history();
        let view = h.since(0);
        let text = render_top(&view);
        assert!(text.contains("agent \"a\""), "{text}");
        assert!(text.contains("agent-b"), "{text}");
        assert!(text.contains("crash"), "{text}");
        assert!(text.contains("offered"), "{text}");
        assert!(text.contains("shard 1 → shard 0"), "{text}");
        assert!(text.contains("2 agents (1 live)"), "{text}");
    }

    #[test]
    fn sparkline_scales_to_peak() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[0.0, 5.0, 10.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'), "{s}");
    }
}

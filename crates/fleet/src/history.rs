//! Bounded time-series history behind the coordinator's ops console.
//!
//! The coordinator's main loop already merges every agent's cumulative
//! [`Snapshot`] once per progress window; [`History`] turns that stream
//! into an operator-queryable record: a ring buffer of [`FleetSample`]s
//! (windowed deltas derived through the *same*
//! [`faasrail_telemetry::DeltaWindow`] the stderr progress line uses, so
//! the two can never disagree), the latest per-agent lease state, and the
//! reassignment timeline. Consumers page through it with a `since` cursor:
//! `GET /state?since=N` returns exactly the samples published after `N`,
//! plus a `dropped` flag when the window they missed has been evicted.
//!
//! Memory is bounded by construction: at most `capacity` samples are
//! retained regardless of run length, and everything else the store holds
//! (agent rows, reassignment spans) is proportional to fleet activity, not
//! duration.

use std::collections::VecDeque;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use faasrail_telemetry::{DeltaWindow, ReassignSpan, Snapshot};

/// Default ring capacity: ten minutes of 1 s windows.
pub const DEFAULT_HISTORY_CAPACITY: usize = 600;

/// Condensed statistics for one window (or one cumulative total), derived
/// from a [`Snapshot`] via the same accessors the stderr progress line
/// uses. Quantiles are `None` when nothing was recorded in the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Requests dispatched (offered load).
    pub issued: u64,
    /// Requests finished successfully.
    pub completed: u64,
    /// `[app_error, timeout, transport, shed]`.
    pub errors: [u64; 4],
    pub cold_starts: u64,
    pub offered_rps: f64,
    pub achieved_rps: f64,
    pub error_rate: f64,
    pub p50_ms: Option<f64>,
    pub p95_ms: Option<f64>,
    pub p99_ms: Option<f64>,
}

impl WindowStats {
    /// Derive display statistics from a snapshot covering `window_secs`.
    pub fn of(snapshot: &Snapshot, window_secs: f64) -> WindowStats {
        let rate = |n: u64| if window_secs > 0.0 { n as f64 / window_secs } else { 0.0 };
        let quantile = |q: f64| {
            let v = snapshot.response_quantile_ms(q);
            v.is_finite().then_some(v)
        };
        WindowStats {
            issued: snapshot.issued,
            completed: snapshot.completed,
            errors: snapshot.errors,
            cold_starts: snapshot.cold_starts,
            offered_rps: rate(snapshot.issued),
            achieved_rps: rate(snapshot.completed + snapshot.errors_total()),
            error_rate: snapshot.error_rate(),
            p50_ms: quantile(0.50),
            p95_ms: quantile(0.95),
            p99_ms: quantile(0.99),
        }
    }

    pub fn errors_total(&self) -> u64 {
        self.errors.iter().sum()
    }

    /// The progress-line tail (`offered … | achieved … | err … | p50/p95/p99 …`)
    /// rendered from the condensed stats — same numbers, same formatting
    /// rules as [`Snapshot::progress_line`].
    pub fn summary(&self) -> String {
        let quantile = |q: Option<f64>| match q {
            Some(v) => format!("{v:.0}"),
            None => "-".to_string(),
        };
        format!(
            "offered {:.1} rps | achieved {:.1} rps | err {:.1}% | p50/p95/p99 {}/{}/{} ms",
            self.offered_rps,
            self.achieved_rps,
            self.error_rate * 100.0,
            quantile(self.p50_ms),
            quantile(self.p95_ms),
            quantile(self.p99_ms),
        )
    }
}

/// One agent's point-in-time state as published to the console.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentState {
    pub name: String,
    pub shard: u32,
    /// Lease state: `"live"`, `"done"`, `"crash"`, `"stall"`, or
    /// `"abort: <reason>"`.
    pub status: String,
    /// Admitted mid-run (rejoin or late join).
    pub rejoined: bool,
    /// Reassignment grants taken over from dead shards.
    pub granted: u64,
    pub lag_ms: u64,
    pub max_lag_ms: u64,
    /// Cumulative counters from the agent's last progress snapshot.
    pub issued: u64,
    pub completed: u64,
    pub errors: u64,
    pub shed: u64,
}

impl AgentState {
    pub fn is_live(&self) -> bool {
        self.status == "live"
    }
}

/// One published fleet sample: the windowed delta since the previous
/// sample plus the cumulative totals and per-agent states at that instant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetSample {
    /// Monotonic cursor; the first sample of a run is `1`.
    pub seq: u64,
    /// Milliseconds since the synchronized start epoch.
    pub at_ms: u64,
    /// The wall-clock span this sample's window covers.
    pub window_ms: u64,
    /// What happened in this window alone.
    pub window: WindowStats,
    /// Cumulative fleet totals (rates over the whole elapsed run).
    pub total: WindowStats,
    pub agents: Vec<AgentState>,
}

/// What `GET /state?since=N` returns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StateView {
    /// Milliseconds since epoch of the newest sample (0 before the first).
    pub now_ms: u64,
    /// Pass this back as `since` to receive only newer samples.
    pub next: u64,
    /// True when samples between `since` and the oldest retained one were
    /// evicted from the ring — the consumer missed a window.
    pub dropped: bool,
    /// Samples with `seq > since`, oldest first.
    pub samples: Vec<FleetSample>,
    /// Latest per-agent states (redundant with the newest sample, but
    /// always present even when `samples` is empty).
    pub agents: Vec<AgentState>,
    /// Cumulative fleet totals at `now_ms`.
    pub total: Option<WindowStats>,
    /// Every mid-run reassignment so far, in issue order.
    pub reassignments: Vec<ReassignSpan>,
    pub abort_reasons: Vec<String>,
}

struct HistoryInner {
    samples: VecDeque<FleetSample>,
    /// Raw windowed snapshots, parallel to `samples` (same eviction):
    /// kept unserialized so exact histogram reconstruction stays possible
    /// without shipping hundreds of buckets per sample over `/state`.
    raw_windows: VecDeque<Snapshot>,
    /// Seq of the next sample to publish (first = 1).
    next_seq: u64,
    windows: DeltaWindow,
    agents: Vec<AgentState>,
    reassignments: Vec<ReassignSpan>,
    abort_reasons: Vec<String>,
    last_at_ms: u64,
}

/// Thread-safe bounded history store shared between the coordinator's
/// control loop (writer) and console connections (readers).
pub struct History {
    capacity: usize,
    inner: Mutex<HistoryInner>,
}

impl History {
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> History {
        assert!(capacity > 0, "History requires capacity >= 1");
        History {
            capacity,
            inner: Mutex::new(HistoryInner {
                samples: VecDeque::with_capacity(capacity.min(1024)),
                raw_windows: VecDeque::with_capacity(capacity.min(1024)),
                next_seq: 1,
                windows: DeltaWindow::new(),
                agents: Vec::new(),
                reassignments: Vec::new(),
                abort_reasons: Vec::new(),
                last_at_ms: 0,
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publish one sample: `merged` is the *cumulative* fleet-wide
    /// snapshot at `at_ms` (milliseconds since the start epoch). The
    /// windowed delta against the previous publish is derived internally
    /// through [`DeltaWindow`]. Returns the sample's `seq`.
    pub fn publish(&self, at_ms: u64, merged: &Snapshot, agents: Vec<AgentState>) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let window_ms = at_ms.saturating_sub(inner.last_at_ms);
        inner.last_at_ms = at_ms;
        let raw_window = inner.windows.advance(merged);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let sample = FleetSample {
            seq,
            at_ms,
            window_ms,
            window: WindowStats::of(&raw_window, window_ms as f64 / 1e3),
            total: WindowStats::of(merged, at_ms as f64 / 1e3),
            agents: agents.clone(),
        };
        inner.agents = agents;
        inner.samples.push_back(sample);
        inner.raw_windows.push_back(raw_window);
        while inner.samples.len() > self.capacity {
            inner.samples.pop_front();
            inner.raw_windows.pop_front();
        }
        seq
    }

    /// The retained raw windowed snapshots, oldest first (parallel to the
    /// retained samples). Merging them yields exactly the cumulative
    /// snapshot spanned by the ring — the reconstruction invariant the
    /// tests hold the store to.
    pub fn raw_windows(&self) -> Vec<Snapshot> {
        self.inner.lock().unwrap().raw_windows.iter().cloned().collect()
    }

    /// The retained samples, oldest first — the bounded windowed timeline
    /// the coordinator persists into the fleet report after drain, so the
    /// run's trajectory survives for post-hoc analysis once the console
    /// is gone.
    pub fn samples(&self) -> Vec<FleetSample> {
        self.inner.lock().unwrap().samples.iter().cloned().collect()
    }

    /// Replace the reassignment timeline + abort reasons (the coordinator
    /// owns the authoritative copies; both are tiny).
    pub fn set_timeline(&self, reassignments: Vec<ReassignSpan>, abort_reasons: Vec<String>) {
        let mut inner = self.inner.lock().unwrap();
        inner.reassignments = reassignments;
        inner.abort_reasons = abort_reasons;
    }

    /// The cumulative fleet-wide snapshot as of the newest sample.
    pub fn cumulative(&self) -> Snapshot {
        self.inner.lock().unwrap().windows.cumulative().clone()
    }

    /// Latest per-agent states.
    pub fn agents(&self) -> Vec<AgentState> {
        self.inner.lock().unwrap().agents.clone()
    }

    /// Everything published after cursor `since` (0 = from the beginning).
    pub fn since(&self, since: u64) -> StateView {
        let inner = self.inner.lock().unwrap();
        let newest = inner.next_seq - 1;
        let oldest_retained = inner.samples.front().map(|s| s.seq).unwrap_or(inner.next_seq);
        // The consumer missed a window iff some sample newer than its
        // cursor has already been evicted.
        let dropped = since.saturating_add(1) < oldest_retained && newest > since;
        let samples: Vec<FleetSample> =
            inner.samples.iter().filter(|s| s.seq > since).cloned().collect();
        StateView {
            now_ms: inner.last_at_ms,
            next: newest,
            dropped,
            samples,
            agents: inner.agents.clone(),
            total: inner
                .samples
                .back()
                .map(|s| s.total.clone())
                .or_else(|| (newest > 0).then(|| WindowStats::of(inner.windows.cumulative(), 0.0))),
            reassignments: inner.reassignments.clone(),
            abort_reasons: inner.abort_reasons.clone(),
        }
    }

    /// The reassignment timeline and abort reasons as last published.
    pub fn timeline(&self) -> (Vec<ReassignSpan>, Vec<String>) {
        let inner = self.inner.lock().unwrap();
        (inner.reassignments.clone(), inner.abort_reasons.clone())
    }

    /// Agent counts by lease state, for `/healthz`.
    pub fn health_counts(&self) -> HealthCounts {
        let inner = self.inner.lock().unwrap();
        let mut h = HealthCounts::default();
        for a in &inner.agents {
            if a.rejoined {
                h.rejoined += 1;
            }
            match a.status.as_str() {
                "live" => h.alive += 1,
                "done" => h.done += 1,
                "stall" => h.stalled += 1,
                "crash" => h.crashed += 1,
                s if s.starts_with("abort") => h.aborted += 1,
                _ => h.crashed += 1,
            }
        }
        h
    }
}

/// Agent counts by lease state (see [`History::health_counts`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthCounts {
    pub alive: usize,
    pub done: usize,
    pub stalled: usize,
    pub crashed: usize,
    pub aborted: usize,
    /// Slots admitted mid-run (rejoins/late joins), whatever their current
    /// lease state — overlaps the other buckets.
    pub rejoined: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(issued: u64, completed: u64) -> Snapshot {
        let mut s = Snapshot { issued, completed, ..Snapshot::default() };
        for _ in 0..completed {
            s.response.record(0.010);
        }
        s
    }

    fn agent(name: &str, status: &str) -> AgentState {
        AgentState {
            name: name.into(),
            shard: 0,
            status: status.into(),
            rejoined: false,
            granted: 0,
            lag_ms: 0,
            max_lag_ms: 0,
            issued: 0,
            completed: 0,
            errors: 0,
            shed: 0,
        }
    }

    #[test]
    fn ring_is_bounded_under_long_runs() {
        let h = History::new(8);
        for i in 1..=1_000u64 {
            h.publish(i * 100, &snap(i, i), vec![agent("a", "live")]);
            assert!(h.len() <= 8, "ring exceeded capacity at sample {i}");
        }
        assert_eq!(h.len(), 8);
        let view = h.since(0);
        assert_eq!(view.next, 1_000);
        assert!(view.dropped, "a cursor from before the ring window must report dropped");
        assert_eq!(view.samples.first().unwrap().seq, 993);
        assert_eq!(view.samples.last().unwrap().seq, 1_000);
    }

    #[test]
    fn since_cursor_returns_exactly_the_missed_window() {
        let h = History::new(100);
        for i in 1..=10u64 {
            h.publish(i * 100, &snap(i * 3, i * 2), vec![]);
        }
        let first = h.since(0);
        assert_eq!(first.samples.len(), 10);
        assert!(!first.dropped);
        assert_eq!(first.next, 10);

        // A consumer that saw up to seq 10 then missed 4 samples.
        for i in 11..=14u64 {
            h.publish(i * 100, &snap(i * 3, i * 2), vec![]);
        }
        let missed = h.since(first.next);
        assert_eq!(missed.samples.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![11, 12, 13, 14]);
        assert!(!missed.dropped);
        assert_eq!(missed.next, 14);
        // Caught up: empty window, same cursor.
        let idle = h.since(missed.next);
        assert!(idle.samples.is_empty());
        assert!(!idle.dropped);
        assert_eq!(idle.next, 14);
    }

    #[test]
    fn windows_partition_the_cumulative_stream() {
        let h = History::new(100);
        let mut cumulative = Snapshot::default();
        for i in 1..=20u64 {
            let mut step = Snapshot::default();
            step.issued = i;
            step.completed = i / 2;
            step.errors[(i % 4) as usize] = 1;
            step.response.record(0.001 * i as f64);
            cumulative.merge(&step);
            h.publish(i * 50, &cumulative, vec![]);
        }
        let mut rebuilt = Snapshot::default();
        for w in h.raw_windows() {
            rebuilt.merge(&w);
        }
        assert_eq!(rebuilt, cumulative, "sum of windowed deltas == final cumulative snapshot");
    }

    proptest::proptest! {
        /// Whatever the publish cadence and per-window activity, merging
        /// every windowed delta reconstructs the final merged snapshot
        /// *exactly* — counters and histogram buckets both.
        #[test]
        fn prop_sum_of_windows_is_the_final_snapshot(
            steps in proptest::collection::vec(
                (0u64..50, 0u64..50, 0usize..4, 0u64..10, 1u64..5_000), 1..40),
        ) {
            let h = History::new(64); // > max steps: nothing evicted
            let mut cumulative = Snapshot::default();
            let mut at_ms = 0u64;
            for (issued, completed, err_class, errs, dt_ms) in steps {
                let mut step = Snapshot {
                    issued,
                    completed,
                    ..Snapshot::default()
                };
                step.errors[err_class] = errs;
                for k in 0..(completed + errs) {
                    step.response.record(0.001 + 0.003 * (k % 7) as f64);
                }
                cumulative.merge(&step);
                at_ms += dt_ms;
                h.publish(at_ms, &cumulative, vec![]);
            }
            let mut rebuilt = Snapshot::default();
            proptest::prop_assert!(!h.since(0).dropped);
            for w in h.raw_windows() {
                rebuilt.merge(&w);
            }
            proptest::prop_assert_eq!(rebuilt, cumulative);
        }
    }

    #[test]
    fn health_counts_bucket_by_lease_state() {
        let h = History::new(4);
        let mut rejoiner = agent("d", "live");
        rejoiner.rejoined = true;
        h.publish(
            100,
            &snap(1, 1),
            vec![
                agent("a", "live"),
                agent("b", "crash"),
                agent("c", "stall"),
                rejoiner,
                agent("e", "abort: operator stop"),
                agent("f", "done"),
            ],
        );
        let c = h.health_counts();
        assert_eq!(
            c,
            HealthCounts { alive: 2, done: 1, stalled: 1, crashed: 1, aborted: 1, rejoined: 1 }
        );
    }

    #[test]
    fn empty_history_view_is_sane() {
        let h = History::new(4);
        let view = h.since(0);
        assert_eq!(view.next, 0);
        assert!(!view.dropped);
        assert!(view.samples.is_empty());
        assert!(view.total.is_none());
        assert_eq!(h.health_counts(), HealthCounts::default());
    }

    #[test]
    fn window_stats_match_progress_line_semantics() {
        let mut s = Snapshot { issued: 100, completed: 95, ..Snapshot::default() };
        s.errors = [3, 1, 0, 1];
        for _ in 0..100 {
            s.response.record(0.020);
        }
        let w = WindowStats::of(&s, 10.0);
        assert!((w.offered_rps - 10.0).abs() < 1e-9);
        assert!((w.achieved_rps - 10.0).abs() < 1e-9);
        assert!((w.error_rate - 0.05).abs() < 1e-9);
        assert!(w.p50_ms.unwrap() > 0.0);
        let line = w.summary();
        assert!(line.contains("offered 10.0 rps"), "{line}");
        assert!(line.contains("err 5.0%"), "{line}");
        // Empty window: quantiles render as dashes, rates as zero.
        let empty = WindowStats::of(&Snapshot::default(), 0.0);
        assert!(empty.p50_ms.is_none());
        assert!(empty.summary().contains("p50/p95/p99 -/-/- ms"), "{}", empty.summary());
    }
}

//! FaaSRail fleet mode: sharded multi-process load generation.
//!
//! One machine's replayer tops out at its core count; the traces FaaSRail
//! downscales do not. Fleet mode splits a mapped request schedule across N
//! agent processes — on one host or many — behind a single coordinator,
//! without changing what the experiment *means*:
//!
//! * **deterministic sharding** — [`faasrail_loadgen::ShardSpec`] routes
//!   every function (by hashed function index) to exactly one shard, so
//!   each function's per-minute invocation series replays intact on one
//!   agent and the union of shards is exactly the original schedule;
//! * **synchronized start** — the coordinator probes each agent's wall
//!   clock ([`faasrail_telemetry::offset_from_probes`], the same midpoint
//!   estimator the cross-tier trace join uses), then issues one epoch
//!   rebased onto every agent's own clock, so shards fire together even
//!   across skewed machines;
//! * **self-contained assignments** — agents receive their shard trace
//!   and the workload pool over the wire; they need no local spec files;
//! * **live fleet view + merged results** — agents stream cumulative
//!   [`faasrail_telemetry::Snapshot`]s on a fixed cadence and return final
//!   [`faasrail_loadgen::RunMetrics`] (plus optional span logs, rebased
//!   onto the shared epoch and merged via
//!   [`faasrail_telemetry::merge_event_logs`]) in one [`FleetReport`];
//! * **crash tolerance** — a lost agent costs its shard's remainder, not
//!   the run: finished work still counts, the rest books as
//!   `aborted_invocations`, and the coordinator always terminates.
//!
//! The protocol ([`wire`]) is length-prefixed JSON over TCP — no
//! dependencies beyond the workspace's own serde stack, debuggable with
//! `nc`.

pub mod agent;
pub mod coordinator;
pub mod wire;

pub use agent::{run_agent, run_agent_with, AgentConfig, AgentRun};
pub use coordinator::{AgentReport, Coordinator, FleetConfig, FleetReport};
pub use wire::{read_frame, wall_clock_us, write_frame, Assignment, FleetMessage};

//! FaaSRail fleet mode: sharded multi-process load generation with an
//! elastic control plane.
//!
//! One machine's replayer tops out at its core count; the traces FaaSRail
//! downscales do not. Fleet mode splits a mapped request schedule across N
//! agent processes — on one host or many — behind a single coordinator,
//! without changing what the experiment *means*:
//!
//! * **deterministic sharding** — [`faasrail_loadgen::ShardSpec`] routes
//!   every function (by hashed function index) to exactly one shard, so
//!   each function's per-minute invocation series replays intact on one
//!   agent and the union of shards is exactly the original schedule;
//! * **synchronized start** — the coordinator probes each agent's wall
//!   clock ([`faasrail_telemetry::offset_from_probes`], the same midpoint
//!   estimator the cross-tier trace join uses), then issues one epoch
//!   rebased onto every agent's own clock, so shards fire together even
//!   across skewed machines;
//! * **self-contained assignments** — agents receive their shard trace
//!   and the workload pool over the wire; they need no local spec files;
//! * **liveness leases** — the `Progress` stream doubles as a heartbeat;
//!   an agent silent past [`FleetConfig::lease_ms`] is declared *stalled*,
//!   a closed socket is a *crash*, an `Abort` frame an agent abort — all
//!   distinguishable in the report;
//! * **dynamic resharding** — a dead agent costs nothing but its latency
//!   histograms: the coordinator salvages the contiguous-finished prefix
//!   from the last acked [`wire::WorkPrefix`] high-water mark
//!   ([`reshard::prefix_metrics`]) and re-partitions the remainder across
//!   survivors as `Reassign` grants ([`reshard::plan_grants`]), keeping
//!   `completed + errors + aborted == offered` exact and the merged
//!   offered per-minute series bit-identical to an unkilled run;
//! * **rejoin** — agents reconnect with bounded exponential backoff and
//!   an idempotent resume token, coming back as fresh capacity for
//!   subsequent grants;
//! * **backpressure visibility** — agents report coordinated-omission-
//!   correct pacing lag per window; the fleet-wide worst case surfaces as
//!   [`FleetReport::max_lag_ms`];
//! * **live fleet view + merged results** — agents stream cumulative
//!   [`faasrail_telemetry::Snapshot`]s on a fixed cadence and return final
//!   [`faasrail_loadgen::RunMetrics`] (plus optional span logs, rebased
//!   onto the shared epoch and merged via
//!   [`faasrail_telemetry::merge_event_logs`]) in one [`FleetReport`];
//! * **ops console** — with [`FleetConfig::console`] (or
//!   [`Coordinator::with_console`]) the coordinator serves an embedded
//!   HTTP observability plane ([`console`], backed by the bounded
//!   [`history::History`] ring): `GET /state` windowed JSON with a `since`
//!   cursor, `GET /metrics` fleet-wide Prometheus 0.0.4 with per-agent
//!   label vectors, `GET /healthz` lease-state counts, and a
//!   self-contained `GET /dashboard` page — plus [`console::render_top`]
//!   behind `faasrail fleet top` for terminal operators.
//!
//! The protocol ([`wire`], version [`wire::PROTOCOL_VERSION`]) is
//! length-prefixed JSON over TCP — no dependencies beyond the workspace's
//! own serde stack, debuggable with `nc`.

pub mod agent;
pub mod console;
pub mod coordinator;
pub mod history;
pub mod reshard;
pub mod wire;

pub use agent::{run_agent, run_agent_with, AgentConfig, AgentRun, PrefixTracker};
pub use console::{fetch_state, render_top, ConsoleHandle, ConsoleServer, DASHBOARD_HTML};
pub use coordinator::{AgentReport, Coordinator, FleetConfig, FleetReport};
pub use history::{
    AgentState, FleetSample, HealthCounts, History, StateView, WindowStats,
    DEFAULT_HISTORY_CAPACITY,
};
pub use reshard::{per_minute_of, plan_grants, prefix_metrics};
pub use wire::{
    read_frame, wall_clock_us, write_frame, Assignment, FleetMessage, Grant, WorkPrefix,
    PROTOCOL_VERSION,
};

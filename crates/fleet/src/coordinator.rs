//! The fleet coordinator: shard, synchronize, collect, merge.
//!
//! One coordinator drives N agents through the wire protocol in
//! [`wire`](crate::wire). The shard partitioner is
//! [`faasrail_loadgen::ShardSpec`] — hash of function index, so every
//! function's full per-minute series lands on exactly one agent and the
//! per-function load shapes the paper's representativeness argument rests
//! on survive sharding intact.
//!
//! Crash tolerance: an agent that disconnects (or goes silent past the
//! progress timeout) loses its shard. The coordinator keeps the shard's
//! last progress snapshot as its result — everything that *finished* still
//! counts — and books the remainder as aborted invocations. A fleet run
//! therefore always terminates with a report; it never hangs on a dead
//! agent.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use serde::Serialize;

use faasrail_core::RequestTrace;
use faasrail_loadgen::{Pacing, RunMetrics, ShardSpec};
use faasrail_telemetry::{
    merge_event_logs, offset_from_probes, ClockOffset, RunReport, Snapshot, TelemetryEvent,
};
use faasrail_workloads::WorkloadPool;

use crate::wire::{read_frame, wall_clock_us, write_frame, Assignment, FleetMessage};

/// Knobs for one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Agents (= shards) to wait for before starting.
    pub agents: usize,
    /// Replay worker threads per agent.
    pub workers: usize,
    pub pacing: Pacing,
    /// Collect agent span logs and build a merged [`RunReport`].
    pub capture_events: bool,
    /// Agent progress cadence, milliseconds.
    pub progress_every_ms: u64,
    /// Gap between the last `Ready` and the synchronized epoch — must
    /// cover one `Start` round trip to every agent.
    pub start_delay_ms: u64,
    /// Gateway URL the agents should replay against; `None` = in-process.
    pub target: Option<String>,
    /// Clock probes per agent for offset estimation.
    pub probes: u32,
    /// Print a live fleet-wide progress line once per progress window.
    pub live: bool,
    /// Silence window after which an agent is declared lost. Must be
    /// comfortably larger than `progress_every_ms`.
    pub agent_timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            agents: 2,
            workers: 4,
            pacing: Pacing::RealTime { compression: 1.0 },
            capture_events: false,
            progress_every_ms: 1_000,
            start_delay_ms: 500,
            target: None,
            probes: 7,
            live: false,
            agent_timeout: Duration::from_secs(30),
        }
    }
}

/// Per-agent outcome inside a [`FleetReport`].
#[derive(Debug, Clone, Serialize)]
pub struct AgentReport {
    pub name: String,
    pub shard: u32,
    /// Requests assigned to this shard.
    pub assigned: u64,
    /// Whether the agent delivered its final `Done`; `false` means the
    /// shard was lost mid-run and its remainder is booked as aborted.
    pub completed: bool,
    /// Agent-minus-coordinator clock offset measured at handshake.
    pub clock: ClockOffset,
    /// Last progress snapshot received (the final counters for a lost
    /// agent; a completed agent's snapshot matches its metrics).
    pub last_progress: Snapshot,
}

/// The merged result of one fleet run.
#[derive(Debug, Serialize)]
pub struct FleetReport {
    pub shards: u32,
    /// Requests in the full (unsharded) schedule.
    pub offered: u64,
    /// Offered invocations that never finished anywhere — shed by agent
    /// loss or an operator abort. `metrics.completed + metrics.errors +
    /// aborted_invocations == offered` always holds.
    pub aborted_invocations: u64,
    /// Fleet-wide merged replay metrics.
    pub metrics: RunMetrics,
    pub agents: Vec<AgentReport>,
    /// Merged cross-agent report, present when `capture_events` was set
    /// and at least one agent returned its span log.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub run_report: Option<RunReport>,
    /// The merged, epoch-rebased event stream behind `run_report` (not
    /// serialized into the report JSON; write it as JSONL separately).
    #[serde(skip_serializing)]
    pub events: Vec<TelemetryEvent>,
}

struct AgentOutcome {
    run_start_wall_us: u64,
    metrics: RunMetrics,
    events: Vec<TelemetryEvent>,
}

struct AgentSlot {
    name: String,
    shard: u32,
    assigned: u64,
    offset: ClockOffset,
    writer: Mutex<TcpStream>,
    last_progress: Mutex<Snapshot>,
    outcome: Mutex<Option<AgentOutcome>>,
}

/// A bound fleet coordinator, ready to accept agents.
pub struct Coordinator {
    listener: TcpListener,
}

impl Coordinator {
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Coordinator> {
        Ok(Coordinator { listener: TcpListener::bind(addr)? })
    }

    /// The bound address — hand this to agents (`port 0` resolves here).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run one fleet replay to completion and merge the results.
    ///
    /// Blocks accepting `cfg.agents` connections, handshakes each
    /// (clock probes → shard assignment), fires the synchronized start,
    /// then collects progress until every shard is done or lost. Setting
    /// `stop` aborts the run cooperatively: agents drain in-flight work,
    /// report their prefix, and the remainder books as aborted.
    pub fn run(
        &self,
        trace: &RequestTrace,
        pool: &WorkloadPool,
        cfg: &FleetConfig,
        stop: &AtomicBool,
    ) -> io::Result<FleetReport> {
        assert!(cfg.agents > 0, "a fleet needs at least one agent");
        let shards = cfg.agents as u32;
        let offered = trace.requests.len() as u64;

        // Phase 1: accept + handshake each agent sequentially. Sequential
        // is fine — the expensive part (shard traces) is precomputed, and
        // a synchronized start makes staggered handshakes harmless.
        let mut slots: Vec<AgentSlot> = Vec::with_capacity(cfg.agents);
        let mut readers: Vec<BufReader<TcpStream>> = Vec::with_capacity(cfg.agents);
        for shard in 0..shards {
            let (stream, peer) = self.listener.accept()?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(cfg.agent_timeout))?;
            let shard_trace = ShardSpec::new(shard, shards).filter(trace);
            let assigned = shard_trace.requests.len() as u64;
            let (slot, reader) =
                handshake(stream, peer, shard, shard_trace, pool, cfg).map_err(|e| {
                    io::Error::new(e.kind(), format!("handshake with shard {shard}: {e}"))
                })?;
            assert_eq!(slot.assigned, assigned);
            slots.push(slot);
            readers.push(reader);
        }

        // Phase 2: one epoch, rebased per agent onto its own clock.
        let epoch_us = wall_clock_us() + cfg.start_delay_ms * 1_000;
        for slot in &slots {
            let at_agent_wall_us = rebase(epoch_us, slot.offset.offset_us);
            let mut w = slot.writer.lock().unwrap();
            write_frame(&mut *w, &FleetMessage::Start { at_agent_wall_us })?;
        }

        // Phase 3: collect. One reader thread per agent; the main thread
        // watches the stop flag and renders the live fleet-wide view.
        let remaining = AtomicUsize::new(slots.len());
        std::thread::scope(|scope| {
            for (slot, reader) in slots.iter().zip(readers) {
                let remaining = &remaining;
                scope.spawn(move || {
                    collect_agent(slot, reader);
                    remaining.fetch_sub(1, Ordering::Release);
                });
            }

            let window = Duration::from_millis(cfg.progress_every_ms.max(100));
            let mut aborted_sent = false;
            let mut prev = Snapshot::default();
            let mut elapsed = Duration::ZERO;
            while remaining.load(Ordering::Acquire) > 0 {
                std::thread::sleep(Duration::from_millis(50));
                elapsed += Duration::from_millis(50);
                if stop.load(Ordering::Relaxed) && !aborted_sent {
                    aborted_sent = true;
                    for slot in &slots {
                        let mut w = slot.writer.lock().unwrap();
                        let abort =
                            FleetMessage::Abort { reason: "coordinator stop requested".into() };
                        write_frame(&mut *w, &abort).ok();
                    }
                }
                if cfg.live && elapsed.as_millis() % window.as_millis().max(1) < 50 {
                    let mut merged = Snapshot::default();
                    for slot in &slots {
                        merged.merge(&slot.last_progress.lock().unwrap());
                    }
                    let delta = merged.delta(&prev);
                    eprintln!(
                        "[fleet {} agents] {}",
                        slots.len(),
                        delta.progress_line(window.as_secs_f64(), elapsed.as_secs_f64())
                    );
                    prev = merged;
                }
            }
        });

        Ok(merge_fleet(slots, shards, offered, epoch_us, cfg))
    }
}

/// Convert a coordinator-clock instant to the agent's clock using the
/// measured agent-minus-coordinator offset.
fn rebase(coordinator_us: u64, offset_us: f64) -> u64 {
    let shifted = coordinator_us as i64 + offset_us.round() as i64;
    shifted.max(0) as u64
}

fn proto_err(what: &str, got: &FleetMessage) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("expected {what}, got {got:?}"))
}

/// Hello → probes → Assign → Ready on a fresh agent connection.
fn handshake(
    stream: TcpStream,
    peer: SocketAddr,
    shard: u32,
    shard_trace: RequestTrace,
    pool: &WorkloadPool,
    cfg: &FleetConfig,
) -> io::Result<(AgentSlot, BufReader<TcpStream>)> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);

    let eof = || io::Error::new(io::ErrorKind::UnexpectedEof, "agent hung up");
    let name = match read_frame(&mut reader)?.ok_or_else(eof)? {
        FleetMessage::Hello { name, .. } => {
            if name.is_empty() {
                format!("agent@{peer}")
            } else {
                name
            }
        }
        other => return Err(proto_err("hello", &other)),
    };

    let mut samples = Vec::with_capacity(cfg.probes as usize);
    for seq in 0..cfg.probes {
        let send_us = wall_clock_us();
        write_frame(&mut writer, &FleetMessage::Probe { seq, wall_us: send_us })?;
        writer.flush()?;
        match read_frame(&mut reader)?.ok_or_else(eof)? {
            FleetMessage::ProbeReply { seq: got, agent_wall_us, .. } if got == seq => {
                samples.push((send_us, agent_wall_us, wall_clock_us()));
            }
            other => return Err(proto_err("probe reply", &other)),
        }
    }
    let offset = offset_from_probes(&samples);

    let assigned = shard_trace.requests.len() as u64;
    let assignment = Assignment {
        shard,
        shards: cfg.agents as u32,
        pacing: cfg.pacing,
        workers: cfg.workers,
        capture_events: cfg.capture_events,
        progress_every_ms: cfg.progress_every_ms,
        target: cfg.target.clone(),
        trace: shard_trace,
        pool: pool.clone(),
    };
    write_frame(&mut writer, &FleetMessage::Assign { assignment })?;
    writer.flush()?;
    match read_frame(&mut reader)?.ok_or_else(eof)? {
        FleetMessage::Ready { shard: got, requests } if got == shard => {
            if requests != assigned {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("shard {shard} acknowledged {requests} requests, assigned {assigned}"),
                ));
            }
        }
        other => return Err(proto_err("ready", &other)),
    }

    let slot = AgentSlot {
        name,
        shard,
        assigned,
        offset,
        writer: Mutex::new(stream),
        last_progress: Mutex::new(Snapshot::default()),
        outcome: Mutex::new(None),
    };
    Ok((slot, reader))
}

/// Drain one agent's stream until `Done`, loss, or timeout. Never blocks
/// forever: the socket carries the configured read timeout, so a silent
/// agent resolves as lost after one quiet window.
fn collect_agent(slot: &AgentSlot, mut reader: BufReader<TcpStream>) {
    loop {
        match read_frame(&mut reader) {
            Ok(Some(FleetMessage::Progress { snapshot, .. })) => {
                *slot.last_progress.lock().unwrap() = snapshot;
            }
            Ok(Some(FleetMessage::Done { run_start_wall_us, metrics, events, .. })) => {
                *slot.last_progress.lock().unwrap() = snapshot_of(&metrics);
                *slot.outcome.lock().unwrap() =
                    Some(AgentOutcome { run_start_wall_us, metrics, events });
                return;
            }
            // Anything else — agent abort, protocol violation, clean EOF,
            // read timeout, connection reset — resolves the shard as lost.
            _ => return,
        }
    }
}

/// Project final metrics back onto the progress-snapshot shape so a
/// completed agent's `last_progress` agrees with its metrics.
fn snapshot_of(m: &RunMetrics) -> Snapshot {
    let mut s = Snapshot {
        issued: m.issued,
        completed: m.completed,
        errors: [m.app_errors, m.timeouts, m.transport_errors, m.shed],
        cold_starts: m.cold_starts,
        ..Snapshot::default()
    };
    s.response.merge(&m.response);
    s
}

/// A lost shard's contribution: everything its last snapshot says
/// *finished*. In-flight and never-dispatched requests are excluded (the
/// report books them as aborted), so the fleet-wide outcome partition
/// stays exact.
fn metrics_from_snapshot(s: &Snapshot) -> RunMetrics {
    let mut m = RunMetrics::new();
    m.completed = s.completed;
    m.app_errors = s.errors[0];
    m.timeouts = s.errors[1];
    m.transport_errors = s.errors[2];
    m.shed = s.errors[3];
    m.errors = s.errors_total();
    m.issued = s.completed + s.errors_total();
    m.cold_starts = s.cold_starts;
    m.response.merge(&s.response);
    m.aborted = true;
    m
}

fn merge_fleet(
    slots: Vec<AgentSlot>,
    shards: u32,
    offered: u64,
    epoch_us: u64,
    cfg: &FleetConfig,
) -> FleetReport {
    let mut metrics = RunMetrics::new();
    let mut agents = Vec::with_capacity(slots.len());
    let mut logs: Vec<Vec<TelemetryEvent>> = Vec::new();
    for slot in slots {
        let outcome = slot.outcome.into_inner().unwrap();
        let last_progress = slot.last_progress.into_inner().unwrap();
        let completed = outcome.is_some();
        match outcome {
            Some(out) => {
                metrics.merge(&out.metrics);
                if !out.events.is_empty() {
                    logs.push(rebase_events(
                        out.events,
                        out.run_start_wall_us,
                        slot.offset.offset_us,
                        epoch_us,
                    ));
                }
            }
            None => metrics.merge(&metrics_from_snapshot(&last_progress)),
        }
        agents.push(AgentReport {
            name: slot.name,
            shard: slot.shard,
            assigned: slot.assigned,
            completed,
            clock: slot.offset,
            last_progress,
        });
    }
    let finished = metrics.completed + metrics.errors;
    let aborted_invocations = offered.saturating_sub(finished);
    if aborted_invocations > 0 {
        metrics.aborted = true;
    }

    let events = merge_event_logs(&logs);
    let run_report =
        (cfg.capture_events && !events.is_empty()).then(|| RunReport::from_events(&events));
    FleetReport { shards, offered, aborted_invocations, metrics, agents, run_report, events }
}

/// Shift one agent's run-relative span timestamps onto the fleet epoch:
/// the agent's t=0 sits `(run_start_wall_us − offset) − epoch` after the
/// epoch in coordinator time, so all agents' spans land on one comparable
/// timeline before the logs merge.
fn rebase_events(
    mut events: Vec<TelemetryEvent>,
    run_start_wall_us: u64,
    offset_us: f64,
    epoch_us: u64,
) -> Vec<TelemetryEvent> {
    let start_coord_us = run_start_wall_us as i64 - offset_us.round() as i64;
    let shift = start_coord_us - epoch_us as i64;
    let adj = |t: u64| (t as i64 + shift).max(0) as u64;
    for event in &mut events {
        if let TelemetryEvent::Invocation(span) = event {
            span.target_us = adj(span.target_us);
            span.dispatched_us = adj(span.dispatched_us);
            span.picked_up_us = adj(span.picked_up_us);
            span.completed_us = adj(span.completed_us);
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_projection_matches_metrics() {
        let mut m = RunMetrics::new();
        m.issued = 10;
        m.completed = 7;
        m.errors = 3;
        m.app_errors = 1;
        m.timeouts = 2;
        m.cold_starts = 4;
        m.response.record(0.050);
        let s = snapshot_of(&m);
        assert_eq!(s.issued, 10);
        assert_eq!(s.completed, 7);
        assert_eq!(s.errors, [1, 2, 0, 0]);
        assert_eq!(s.cold_starts, 4);
        assert_eq!(s.response.total(), 1);
    }

    #[test]
    fn lost_shard_counts_only_finished_work() {
        let mut s = Snapshot::default();
        s.issued = 100; // 20 in flight when the agent died
        s.completed = 70;
        s.errors = [4, 3, 2, 1];
        let m = metrics_from_snapshot(&s);
        assert_eq!(m.issued, 80, "in-flight requests are not counted as issued");
        assert_eq!(m.completed + m.errors, 80);
        assert!(m.aborted);
        assert_eq!(m.app_errors + m.timeouts + m.transport_errors + m.shed, m.errors);
    }

    #[test]
    fn rebase_applies_offset_and_clamps() {
        assert_eq!(rebase(1_000_000, 250.0), 1_000_250);
        assert_eq!(rebase(1_000_000, -250.4), 999_750);
        assert_eq!(rebase(100, -1e9), 0, "pathological offsets clamp instead of wrapping");
    }

    #[test]
    fn rebase_events_shifts_invocation_spans_only() {
        use faasrail_telemetry::{InvocationSpan, OutcomeClass, RunSummary};
        let span = InvocationSpan {
            trace_id: 1,
            seq: 0,
            workload: 0,
            function_index: 0,
            scheduled_ms: 0,
            target_us: 1_000,
            dispatched_us: 1_100,
            picked_up_us: 1_200,
            completed_us: 1_300,
            service_ms: 0.1,
            outcome: OutcomeClass::Ok,
            cold_start: false,
            error: None,
        };
        let end = RunSummary { issued: 1, completed: 1, errors: 0, aborted: false, wall_us: 9 };
        let events = vec![TelemetryEvent::Invocation(span), TelemetryEvent::RunEnd(end)];
        // Agent clock runs 500us ahead; its replay started 2000us (agent
        // clock) after... run_start_wall_us = 10_500 on the agent clock is
        // 10_000 coordinator time, epoch at 8_000 → shift = +2_000.
        let out = rebase_events(events, 10_500, 500.0, 8_000);
        match &out[0] {
            TelemetryEvent::Invocation(s) => {
                assert_eq!(s.target_us, 3_000);
                assert_eq!(s.dispatched_us, 3_100);
                assert_eq!(s.picked_up_us, 3_200);
                assert_eq!(s.completed_us, 3_300);
            }
            other => panic!("expected invocation span, got {other:?}"),
        }
        match &out[1] {
            TelemetryEvent::RunEnd(e) => assert_eq!(e.wall_us, 9, "run_end is untouched"),
            other => panic!("expected run_end, got {other:?}"),
        }
    }
}

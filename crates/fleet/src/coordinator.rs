//! The fleet coordinator: shard, synchronize, collect — and reshard.
//!
//! One coordinator drives N agents through the wire protocol in
//! [`wire`](crate::wire). The shard partitioner is
//! [`faasrail_loadgen::ShardSpec`] — hash of function index, so every
//! function's full per-minute series lands on exactly one agent and the
//! per-function load shapes the paper's representativeness argument rests
//! on survive sharding intact.
//!
//! Since PR 7 the coordinator is an *elastic control plane*:
//!
//! * **Liveness.** Every agent connection carries a lease
//!   ([`FleetConfig::lease_ms`]): the `Progress` stream doubles as a
//!   heartbeat, and an agent that goes silent past the lease is declared
//!   *stalled*, while a closed socket is a *crash* and an `Abort` frame an
//!   *agent abort* — three distinguishable reasons in the report.
//! * **Dynamic resharding.** A dead agent's work is not written off: the
//!   coordinator accounts the contiguous-finished prefix from the last
//!   acked [`WorkPrefix`] high-water mark ([`crate::reshard::prefix_metrics`] —
//!   per-minute and per-kind series reconstructed from the retained shard
//!   trace, so the merged offered series stays bit-identical to an
//!   unkilled run), then re-partitions the remainder across survivors as
//!   `Reassign` grants ([`crate::reshard::plan_grants`]). Only work no
//!   survivor could take books as `aborted_invocations`; the outcome
//!   partition `completed + errors + aborted == offered` holds exactly
//!   throughout. `reshard: false` restores the pre-elastic behavior (the
//!   whole remainder aborts with snapshot-level accounting).
//! * **Rejoin & late join.** After the synchronized start the listener
//!   keeps admitting connections: an agent reconnecting with its
//!   `HelloAck` resume token — or a brand-new late joiner — is handed an
//!   empty assignment and becomes fresh capacity for subsequent grants.
//! * **Backpressure.** Agents report per-window pacing lag; the fleet-wide
//!   worst case surfaces as [`FleetReport::max_lag_ms`] (offered-vs-
//!   achieved skew), with catch-up always coordinated-omission-correct on
//!   the agent side.
//!
//! Termination: the run ends when every work item is either finished
//! (its owner's acked watermark covers its trace) or accounted as
//! aborted; the coordinator then sends `Finish`, collects each agent's
//! `Done`, and merges. A fleet run always terminates with a report.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::Serialize;

use faasrail_core::RequestTrace;
use faasrail_loadgen::{Pacing, RunMetrics, ShardSpec};
use faasrail_telemetry::{
    merge_event_logs, offset_from_probes, ClockOffset, DeltaWindow, ReassignSpan, RunReport,
    Snapshot, TelemetryEvent,
};
use faasrail_workloads::WorkloadPool;

use crate::console::ConsoleServer;
use crate::history::{AgentState, History};
use crate::reshard::{per_minute_of, plan_grants, prefix_metrics};
use crate::wire::{
    read_frame, wall_clock_us, write_frame, Assignment, FleetMessage, WorkPrefix, PROTOCOL_VERSION,
};

/// Grant work ids live in a separate id space from shard ids (which also
/// name each agent's original work), so a late-joining shard can never
/// collide with an issued grant.
const GRANT_ID_BASE: u64 = 1 << 32;

/// Knobs for one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Agents (= initial shards) to wait for before starting.
    pub agents: usize,
    /// Replay worker threads per agent.
    pub workers: usize,
    pub pacing: Pacing,
    /// Collect agent span logs and build a merged [`RunReport`].
    pub capture_events: bool,
    /// Agent progress cadence, milliseconds.
    pub progress_every_ms: u64,
    /// Gap between the last `Ready` and the synchronized epoch — must
    /// cover one `Start` round trip to every agent.
    pub start_delay_ms: u64,
    /// Gateway URL the agents should replay against; `None` = in-process.
    pub target: Option<String>,
    /// Clock probes per agent for offset estimation.
    pub probes: u32,
    /// Print a live fleet-wide progress line once per progress window.
    pub live: bool,
    /// Handshake-phase socket timeout (before the lease takes over).
    pub agent_timeout: Duration,
    /// Liveness lease: an agent with no frame for this long is declared
    /// stalled and its work reshards. Must comfortably exceed
    /// `progress_every_ms`.
    pub lease_ms: u64,
    /// Reassign a dead agent's remainder to survivors mid-run. `false`
    /// restores the pre-elastic accounting: the remainder books as
    /// aborted from the last progress snapshot.
    pub reshard: bool,
    /// Serve the HTTP ops console (`/state`, `/metrics`, `/healthz`,
    /// `/dashboard`) on this address for the duration of the run. Ignored
    /// when the coordinator was pre-bound via [`Coordinator::with_console`]
    /// (which is how tests discover a `port 0` console address).
    pub console: Option<String>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            agents: 2,
            workers: 4,
            pacing: Pacing::RealTime { compression: 1.0 },
            capture_events: false,
            progress_every_ms: 1_000,
            start_delay_ms: 500,
            target: None,
            probes: 7,
            live: false,
            agent_timeout: Duration::from_secs(30),
            lease_ms: 5_000,
            reshard: true,
            console: None,
        }
    }
}

/// Per-agent outcome inside a [`FleetReport`].
#[derive(Debug, Clone, Serialize)]
pub struct AgentReport {
    pub name: String,
    pub shard: u32,
    /// Requests assigned to this shard at handshake (grants excluded).
    pub assigned: u64,
    /// Whether the agent delivered its final `Done`.
    pub completed: bool,
    /// `"done"`, `"crash"`, `"stall"`, or `"abort: <reason>"`.
    pub status: String,
    /// Reassignment grants this agent took over from dead shards.
    pub granted: u64,
    /// Whether this slot was admitted mid-run (rejoin or late join).
    pub rejoined: bool,
    /// Last and worst reported pacing lag, milliseconds.
    pub lag_ms: u64,
    pub max_lag_ms: u64,
    /// Agent-minus-coordinator clock offset measured at handshake.
    pub clock: ClockOffset,
    /// Last progress snapshot received.
    pub last_progress: Snapshot,
}

/// The merged result of one fleet run.
#[derive(Debug, Serialize)]
pub struct FleetReport {
    pub shards: u32,
    /// Requests in the full (unsharded) schedule.
    pub offered: u64,
    /// Offered invocations that never finished anywhere — work no
    /// survivor could take, or an operator abort. `metrics.completed +
    /// metrics.errors + aborted_invocations == offered` always holds.
    pub aborted_invocations: u64,
    /// Fleet-wide merged replay metrics.
    pub metrics: RunMetrics,
    pub agents: Vec<AgentReport>,
    /// Every mid-run reassignment, in issue order.
    pub reassignments: Vec<ReassignSpan>,
    /// Abort reasons observed (agent aborts, protocol refusals, operator
    /// stop) — distinguishable in the report since PR 7.
    pub abort_reasons: Vec<String>,
    /// Worst pacing lag reported by any agent, milliseconds (fleet-wide
    /// offered-vs-achieved skew).
    pub max_lag_ms: u64,
    /// Per-minute series of aborted invocations (resharding runs only;
    /// reconstructed from the unreassignable remainder traces).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub aborted_per_minute: Option<Vec<u64>>,
    /// Merged cross-agent report, present when `capture_events` was set
    /// and at least one agent returned its span log.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub run_report: Option<RunReport>,
    /// The merged, epoch-rebased event stream behind `run_report` (not
    /// serialized into the report JSON; write it as JSONL separately).
    #[serde(skip_serializing)]
    pub events: Vec<TelemetryEvent>,
    /// Build provenance of the coordinator binary that merged this run.
    pub build: faasrail_telemetry::BuildInfo,
    /// The console history ring's contents at drain — the bounded,
    /// windowed fleet timeline (same `FleetSample`s `/state` served
    /// live), persisted so the trajectory survives the run for post-hoc
    /// analysis.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub console_history: Option<Vec<crate::history::FleetSample>>,
}

struct AgentOutcome {
    run_start_wall_us: u64,
    metrics: RunMetrics,
    events: Vec<TelemetryEvent>,
}

#[derive(Debug, Clone, PartialEq)]
enum SlotStatus {
    Live,
    Done,
    Dead(String),
}

struct Slot {
    name: String,
    shard: u32,
    assigned: u64,
    offset: ClockOffset,
    writer: Arc<Mutex<TcpStream>>,
    status: SlotStatus,
    rejoined: bool,
    last_progress: Snapshot,
    prefixes: HashMap<u64, WorkPrefix>,
    lag_ms: u64,
    max_lag_ms: u64,
    granted: u64,
    outcome: Option<AgentOutcome>,
    /// Work ids currently owned (original shard + live grants).
    owned: Vec<u64>,
}

struct Work {
    /// Retained trace (resharding runs); `None` under `reshard: false`.
    trace: Option<RequestTrace>,
    len: u64,
    owner: usize,
    origin_shard: u32,
    /// Fully accounted without (or before) its owner's `Done`: salvaged
    /// prefix + regranted/aborted remainder, or the owner reported in.
    accounted: bool,
}

struct Inner {
    slots: Vec<Slot>,
    works: HashMap<u64, Work>,
    next_grant_id: u64,
    next_shard: u32,
    abort_reasons: Vec<String>,
    reassignments: Vec<ReassignSpan>,
    /// Prefix metrics salvaged from dead agents' works.
    salvaged: RunMetrics,
    aborted_per_minute: Vec<u64>,
}

/// Shared control-plane state, threaded through collector threads.
struct Control<'a> {
    pool: &'a WorkloadPool,
    cfg: &'a FleetConfig,
    epoch_us: u64,
    /// Operator abort in progress: deaths stop resharding (the work is
    /// being cancelled anyway) and fall back to snapshot accounting.
    aborting: &'a AtomicBool,
    collectors: &'a AtomicUsize,
    inner: Mutex<Inner>,
}

impl Control<'_> {
    /// Trace time elapsed fleet-wide right now, milliseconds.
    fn elapsed_trace_ms(&self) -> u64 {
        let wall_ms = wall_clock_us().saturating_sub(self.epoch_us) / 1_000;
        match self.cfg.pacing {
            Pacing::RealTime { compression } => (wall_ms as f64 * compression) as u64,
            _ => 0,
        }
    }

    fn on_progress(
        &self,
        idx: usize,
        snapshot: Snapshot,
        prefixes: Vec<WorkPrefix>,
        lag_ms: u64,
        max_lag_ms: u64,
    ) {
        let mut inner = self.inner.lock().unwrap();
        let slot = &mut inner.slots[idx];
        slot.last_progress = snapshot;
        slot.lag_ms = lag_ms;
        slot.max_lag_ms = slot.max_lag_ms.max(max_lag_ms);
        for p in prefixes {
            slot.prefixes.insert(p.work, p);
        }
    }

    fn on_done(&self, idx: usize, outcome: AgentOutcome) {
        let mut inner = self.inner.lock().unwrap();
        let slot = &mut inner.slots[idx];
        slot.status = SlotStatus::Done;
        slot.outcome = Some(outcome);
        let owned = slot.owned.clone();
        for w in owned {
            if let Some(work) = inner.works.get_mut(&w) {
                work.accounted = true;
            }
        }
    }

    /// Declare a slot dead and re-plan its work. `kind` is `"crash"`,
    /// `"stall"`, or `"abort"` (with the agent's reason).
    fn on_dead(&self, idx: usize, kind: &str, agent_reason: Option<String>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.slots[idx].status != SlotStatus::Live {
            return;
        }
        let reason = match &agent_reason {
            Some(r) => format!("{kind}: {r}"),
            None => kind.to_string(),
        };
        inner.slots[idx].status = SlotStatus::Dead(reason.clone());
        let dead_shard = inner.slots[idx].shard;
        if let Some(r) = agent_reason {
            inner.abort_reasons.push(format!("shard {dead_shard}: {r}"));
        }
        let owned = std::mem::take(&mut inner.slots[idx].owned);

        if !self.cfg.reshard || self.aborting.load(Ordering::Relaxed) {
            // Pre-elastic accounting: the merge layer books this slot's
            // finished work from its last snapshot and the remainder as
            // aborted. Mark the works accounted so termination converges.
            for w in owned {
                if let Some(work) = inner.works.get_mut(&w) {
                    work.accounted = true;
                }
            }
            return;
        }

        let elapsed_ms = self.elapsed_trace_ms();
        for w in owned {
            let prefix = inner.slots[idx]
                .prefixes
                .get(&w)
                .copied()
                .unwrap_or(WorkPrefix { work: w, ..WorkPrefix::default() });
            let Some(work) = inner.works.get(&w) else { continue };
            let origin_shard = work.origin_shard;
            let trace = work.trace.clone().expect("resharding runs retain work traces");

            // 1. Salvage the contiguous-finished prefix: those outcomes
            // happened; only their latency histograms die with the agent.
            let salvage = prefix_metrics(&trace, self.pool, &prefix);
            inner.salvaged.merge(&salvage);

            // 2. Re-partition the remainder across survivors (sorted by
            // shard id for determinism), or book it aborted if none.
            let mut survivors: Vec<(usize, u32)> = inner
                .slots
                .iter()
                .enumerate()
                .filter(|(i, s)| *i != idx && s.status == SlotStatus::Live)
                .map(|(i, s)| (i, s.shard))
                .collect();
            survivors.sort_by_key(|&(_, shard)| shard);
            if survivors.is_empty() {
                let remainder =
                    faasrail_loadgen::remainder_after(&trace, prefix.watermark as usize);
                let pm = per_minute_of(&remainder);
                if inner.aborted_per_minute.len() < pm.len() {
                    inner.aborted_per_minute.resize(pm.len(), 0);
                }
                for (a, b) in inner.aborted_per_minute.iter_mut().zip(&pm) {
                    *a += b;
                }
            } else {
                let shard_ids: Vec<u32> = survivors.iter().map(|&(_, s)| s).collect();
                let next_id = inner.next_grant_id;
                let grants = plan_grants(
                    &trace,
                    prefix.watermark,
                    &shard_ids,
                    next_id,
                    origin_shard,
                    elapsed_ms,
                );
                inner.next_grant_id += grants.len() as u64;
                let at_us = wall_clock_us().saturating_sub(self.epoch_us);
                for (target_shard, grant) in grants {
                    let (tidx, _) = *survivors
                        .iter()
                        .find(|&&(_, s)| s == target_shard)
                        .expect("planned target");
                    let requests = grant.trace.requests.len() as u64;
                    inner.works.insert(
                        grant.id,
                        Work {
                            trace: Some(grant.trace.clone()),
                            len: requests,
                            owner: tidx,
                            origin_shard,
                            accounted: false,
                        },
                    );
                    inner.slots[tidx].owned.push(grant.id);
                    inner.slots[tidx].granted += 1;
                    inner.reassignments.push(ReassignSpan {
                        at_us,
                        from_shard: dead_shard,
                        to_shard: target_shard,
                        work: grant.id,
                        requests,
                        reason: kind.to_string(),
                    });
                    // Best-effort send: a target that just died will fail
                    // here, and its own death re-reshards this grant.
                    let writer = Arc::clone(&inner.slots[tidx].writer);
                    let msg = FleetMessage::Reassign { grant };
                    write_frame(&mut *writer.lock().unwrap(), &msg).ok();
                }
            }
            if let Some(work) = inner.works.get_mut(&w) {
                work.accounted = true;
            }
        }
    }

    /// Every work item finished (acked watermark covers it) or accounted.
    fn all_work_resolved(&self) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.works.iter().all(|(id, work)| {
            if work.accounted {
                return true;
            }
            let slot = &inner.slots[work.owner];
            slot.status == SlotStatus::Live
                && slot.prefixes.get(id).map(|p| p.watermark >= work.len).unwrap_or(work.len == 0)
        })
    }
}

/// A bound fleet coordinator, ready to accept agents.
pub struct Coordinator {
    listener: TcpListener,
    console: Option<ConsoleServer>,
}

impl Coordinator {
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Coordinator> {
        Ok(Coordinator { listener: TcpListener::bind(addr)?, console: None })
    }

    /// The bound address — hand this to agents (`port 0` resolves here).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Pre-bind the ops console so its address (e.g. `port 0`) is known
    /// before [`Coordinator::run`] blocks. Takes precedence over
    /// [`FleetConfig::console`].
    pub fn with_console<A: ToSocketAddrs>(mut self, addr: A) -> io::Result<Coordinator> {
        self.console = Some(ConsoleServer::bind(addr)?);
        Ok(self)
    }

    /// The console's bound address, when pre-bound via `with_console`.
    pub fn console_addr(&self) -> Option<SocketAddr> {
        self.console.as_ref().and_then(|c| c.local_addr().ok())
    }

    /// Run one fleet replay to completion and merge the results.
    ///
    /// Blocks accepting `cfg.agents` connections, handshakes each
    /// (version check → clock probes → shard assignment), fires the
    /// synchronized start, then runs the control plane — collecting
    /// progress, resharding dead agents' remainders, admitting rejoins —
    /// until every offered invocation is accounted for. Setting `stop`
    /// aborts cooperatively: agents drain in-flight work, report their
    /// prefix, and the remainder books as aborted.
    pub fn run(
        &self,
        trace: &RequestTrace,
        pool: &WorkloadPool,
        cfg: &FleetConfig,
        stop: &AtomicBool,
    ) -> io::Result<FleetReport> {
        assert!(cfg.agents > 0, "a fleet needs at least one agent");
        let shards = cfg.agents as u32;
        let offered = trace.requests.len() as u64;
        let run_token = format!("fleet-{:x}", wall_clock_us());

        // Ops console: pre-bound (`with_console`) or bound here from the
        // config. It serves from before the first handshake until the
        // final merge, so operators can watch the whole run.
        let console_bound;
        let console: Option<&ConsoleServer> = match (&self.console, &cfg.console) {
            (Some(c), _) => Some(c),
            (None, Some(addr)) => {
                console_bound = ConsoleServer::bind(addr.as_str())?;
                Some(&console_bound)
            }
            (None, None) => None,
        };
        let console_run = match console {
            Some(c) => Some(c.start()?),
            None => None,
        };
        let history: Option<Arc<History>> = console.map(|c| c.history());

        // Phase 1: accept + handshake each agent sequentially. Sequential
        // is fine — the expensive part (shard traces) is precomputed, and
        // a synchronized start makes staggered handshakes harmless.
        let mut slots: Vec<Slot> = Vec::with_capacity(cfg.agents);
        let mut readers: Vec<BufReader<TcpStream>> = Vec::with_capacity(cfg.agents);
        for shard in 0..shards {
            let (stream, peer) = self.listener.accept()?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(cfg.agent_timeout))?;
            let shard_trace = ShardSpec::new(shard, shards).filter(trace);
            let token = format!("{run_token}-{shard}");
            let (slot, reader) =
                handshake(stream, peer, shard, shard_trace, pool, cfg, offered, token).map_err(
                    |e| io::Error::new(e.kind(), format!("handshake with shard {shard}: {e}")),
                )?;
            slots.push(slot);
            readers.push(reader);
        }

        // Phase 2: one epoch, rebased per agent onto its own clock.
        let epoch_us = wall_clock_us() + cfg.start_delay_ms * 1_000;
        for slot in &slots {
            let at_agent_wall_us = rebase(epoch_us, slot.offset.offset_us);
            let mut w = slot.writer.lock().unwrap();
            write_frame(&mut *w, &FleetMessage::Start { at_agent_wall_us })?;
        }

        // Phase 3: the control plane. One collector thread per agent (the
        // lease is the socket read timeout), an admission thread for
        // rejoins/late joiners, and the main thread deciding termination.
        let mut works = HashMap::new();
        for (i, slot) in slots.iter_mut().enumerate() {
            works.insert(
                slot.shard as u64,
                Work {
                    trace: cfg.reshard.then(|| ShardSpec::new(slot.shard, shards).filter(trace)),
                    len: slot.assigned,
                    owner: i,
                    origin_shard: slot.shard,
                    accounted: false,
                },
            );
            slot.owned.push(slot.shard as u64);
        }
        let aborting = AtomicBool::new(false);
        let collectors = AtomicUsize::new(slots.len());
        let control = Control {
            pool,
            cfg,
            epoch_us,
            aborting: &aborting,
            collectors: &collectors,
            inner: Mutex::new(Inner {
                slots,
                works,
                next_grant_id: GRANT_ID_BASE,
                next_shard: shards,
                abort_reasons: Vec::new(),
                reassignments: Vec::new(),
                salvaged: RunMetrics::new(),
                aborted_per_minute: Vec::new(),
            }),
        };
        let run_over = AtomicBool::new(false);
        let finish_sent = AtomicBool::new(false);
        let admission_busy = AtomicBool::new(false);

        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            let control = &control;
            for (idx, reader) in readers.into_iter().enumerate() {
                scope.spawn(move || {
                    collect_agent(control, idx, reader);
                    control.collectors.fetch_sub(1, Ordering::AcqRel);
                });
            }

            // Admission: rejoins and late joiners become spare capacity.
            {
                let (run_over, finish_sent, admission_busy) =
                    (&run_over, &finish_sent, &admission_busy);
                let (listener, trace) = (&self.listener, trace);
                scope.spawn(move || {
                    while !run_over.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                admission_busy.store(true, Ordering::Release);
                                admit_spare(
                                    control,
                                    scope,
                                    stream,
                                    peer,
                                    trace,
                                    finish_sent.load(Ordering::Acquire),
                                );
                                admission_busy.store(false, Ordering::Release);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(50));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(50)),
                        }
                    }
                });
            }

            let window = Duration::from_millis(cfg.progress_every_ms.max(100));
            let history = &history;
            let mut live_windows = DeltaWindow::new();
            let mut elapsed = Duration::ZERO;
            loop {
                std::thread::sleep(Duration::from_millis(50));
                elapsed += Duration::from_millis(50);
                if stop.load(Ordering::Relaxed) && !aborting.swap(true, Ordering::AcqRel) {
                    let inner = control.inner.lock().unwrap();
                    for slot in inner.slots.iter().filter(|s| s.status == SlotStatus::Live) {
                        let abort =
                            FleetMessage::Abort { reason: "coordinator stop requested".into() };
                        write_frame(&mut *slot.writer.lock().unwrap(), &abort).ok();
                    }
                }
                if !finish_sent.load(Ordering::Acquire)
                    && !aborting.load(Ordering::Acquire)
                    && control.all_work_resolved()
                {
                    finish_sent.store(true, Ordering::Release);
                    let inner = control.inner.lock().unwrap();
                    for slot in inner.slots.iter().filter(|s| s.status == SlotStatus::Live) {
                        write_frame(&mut *slot.writer.lock().unwrap(), &FleetMessage::Finish).ok();
                    }
                }
                if (cfg.live || history.is_some())
                    && elapsed.as_millis() % window.as_millis().max(1) < 50
                {
                    let inner = control.inner.lock().unwrap();
                    let mut merged = Snapshot::default();
                    for slot in &inner.slots {
                        merged.merge(&slot.last_progress);
                    }
                    if let Some(h) = history {
                        let at_ms = wall_clock_us().saturating_sub(epoch_us) / 1_000;
                        h.publish(at_ms, &merged, agent_states(&inner.slots));
                        h.set_timeline(inner.reassignments.clone(), inner.abort_reasons.clone());
                    }
                    if cfg.live {
                        let lag: u64 = inner.slots.iter().map(|s| s.lag_ms).max().unwrap_or(0);
                        // Same DeltaWindow machinery as the console history
                        // and `fleet top`, so the three views always agree.
                        let delta = live_windows.advance(&merged);
                        eprintln!(
                            "[fleet {} agents, lag {}ms] {}",
                            inner.slots.len(),
                            lag,
                            delta.progress_line(window.as_secs_f64(), elapsed.as_secs_f64())
                        );
                    }
                }
                if collectors.load(Ordering::Acquire) == 0
                    && !admission_busy.load(Ordering::Acquire)
                {
                    break;
                }
            }
            run_over.store(true, Ordering::Release);
        });
        self.listener.set_nonblocking(false).ok();

        // One terminal sample so consumers that poll after the last window
        // still see final lease states and the complete timeline.
        if let Some(h) = &history {
            let inner = control.inner.lock().unwrap();
            let mut merged = Snapshot::default();
            for slot in &inner.slots {
                merged.merge(&slot.last_progress);
            }
            let at_ms = wall_clock_us().saturating_sub(epoch_us) / 1_000;
            h.publish(at_ms, &merged, agent_states(&inner.slots));
            h.set_timeline(inner.reassignments.clone(), inner.abort_reasons.clone());
        }
        if let Some(run) = console_run {
            run.stop();
        }

        let inner = control.inner.into_inner().unwrap();
        let mut report = merge_fleet(inner, shards, offered, epoch_us, cfg);
        // Persist the bounded console timeline (published above even when
        // no console was served) so the run's trajectory outlives the run.
        report.console_history = history.as_ref().map(|h| h.samples());
        Ok(report)
    }
}

/// Convert a coordinator-clock instant to the agent's clock using the
/// measured agent-minus-coordinator offset.
fn rebase(coordinator_us: u64, offset_us: f64) -> u64 {
    let shifted = coordinator_us as i64 + offset_us.round() as i64;
    shifted.max(0) as u64
}

fn proto_err(what: &str, got: &FleetMessage) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("expected {what}, got {got:?}"))
}

/// Hello → version check → HelloAck → probes → Assign → Ready on a fresh
/// agent connection. Returns the armed slot plus whether the agent
/// presented a resume token (a rejoin).
#[allow(clippy::too_many_arguments)]
fn handshake(
    stream: TcpStream,
    peer: SocketAddr,
    shard: u32,
    shard_trace: RequestTrace,
    pool: &WorkloadPool,
    cfg: &FleetConfig,
    offered: u64,
    token: String,
) -> io::Result<(Slot, BufReader<TcpStream>)> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);

    let eof = || io::Error::new(io::ErrorKind::UnexpectedEof, "agent hung up");
    let (name, rejoined) = match read_frame(&mut reader)?.ok_or_else(eof)? {
        FleetMessage::Hello { name, proto, resume_token, .. } => {
            let proto = crate::wire::effective_proto(proto);
            if proto != PROTOCOL_VERSION {
                let reason = format!(
                    "protocol version mismatch: coordinator v{PROTOCOL_VERSION}, agent v{proto}"
                );
                write_frame(&mut writer, &FleetMessage::Abort { reason: reason.clone() }).ok();
                writer.flush().ok();
                return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
            }
            let name = if name.is_empty() { format!("agent@{peer}") } else { name };
            (name, resume_token.is_some())
        }
        other => return Err(proto_err("hello", &other)),
    };
    write_frame(
        &mut writer,
        &FleetMessage::HelloAck {
            proto: PROTOCOL_VERSION,
            token: token.clone(),
            lease_ms: cfg.lease_ms,
        },
    )?;
    writer.flush()?;

    let mut samples = Vec::with_capacity(cfg.probes as usize);
    for seq in 0..cfg.probes {
        let send_us = wall_clock_us();
        write_frame(&mut writer, &FleetMessage::Probe { seq, wall_us: send_us })?;
        writer.flush()?;
        match read_frame(&mut reader)?.ok_or_else(eof)? {
            FleetMessage::ProbeReply { seq: got, agent_wall_us, .. } if got == seq => {
                samples.push((send_us, agent_wall_us, wall_clock_us()));
            }
            other => return Err(proto_err("probe reply", &other)),
        }
    }
    let offset = offset_from_probes(&samples);

    let assigned = shard_trace.requests.len() as u64;
    let assignment = Assignment {
        shard,
        shards: cfg.agents as u32,
        pacing: cfg.pacing,
        workers: cfg.workers,
        capture_events: cfg.capture_events,
        progress_every_ms: cfg.progress_every_ms,
        target: cfg.target.clone(),
        trace: shard_trace,
        pool: pool.clone(),
        event_capacity: offered + 64,
    };
    write_frame(&mut writer, &FleetMessage::Assign { assignment })?;
    writer.flush()?;
    match read_frame(&mut reader)?.ok_or_else(eof)? {
        FleetMessage::Ready { shard: got, requests } if got == shard => {
            if requests != assigned {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("shard {shard} acknowledged {requests} requests, assigned {assigned}"),
                ));
            }
        }
        other => return Err(proto_err("ready", &other)),
    }

    let slot = Slot {
        name,
        shard,
        assigned,
        offset,
        writer: Arc::new(Mutex::new(stream)),
        status: SlotStatus::Live,
        rejoined,
        last_progress: Snapshot::default(),
        prefixes: HashMap::new(),
        lag_ms: 0,
        max_lag_ms: 0,
        granted: 0,
        outcome: None,
        owned: Vec::new(),
    };
    Ok((slot, reader))
}

/// Admit a mid-run connection (rejoin or late join) as spare capacity:
/// full handshake with an *empty* assignment, a `Start` at the (past)
/// epoch, registration as a live slot, and a collector thread. Refused
/// with a clean `Abort` once the run is finishing.
fn admit_spare<'scope, 'env>(
    control: &'scope Control<'env>,
    scope: &'scope std::thread::Scope<'scope, 'env>,
    stream: TcpStream,
    peer: SocketAddr,
    trace: &RequestTrace,
    finishing: bool,
) {
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(control.cfg.agent_timeout)).is_err() {
        return;
    }
    if finishing {
        let reason = "run is finishing; no capacity needed".to_string();
        let mut w = stream;
        write_frame(&mut w, &FleetMessage::Abort { reason: reason.clone() }).ok();
        control.inner.lock().unwrap().abort_reasons.push(format!("refused {peer}: {reason}"));
        return;
    }
    let (shard, token) = {
        let mut inner = control.inner.lock().unwrap();
        let shard = inner.next_shard;
        inner.next_shard += 1;
        (shard, format!("fleet-spare-{:x}-{shard}", wall_clock_us()))
    };
    let empty = RequestTrace { duration_minutes: trace.duration_minutes, requests: Vec::new() };
    let offered = trace.requests.len() as u64;
    match handshake(stream, peer, shard, empty, control.pool, control.cfg, offered, token) {
        Ok((slot, reader)) => {
            let at_agent_wall_us = rebase(control.epoch_us, slot.offset.offset_us);
            if write_frame(
                &mut *slot.writer.lock().unwrap(),
                &FleetMessage::Start { at_agent_wall_us },
            )
            .is_err()
            {
                return;
            }
            let idx = {
                let mut inner = control.inner.lock().unwrap();
                let idx = inner.slots.len();
                inner.works.insert(
                    shard as u64,
                    Work {
                        trace: control.cfg.reshard.then(|| RequestTrace {
                            duration_minutes: trace.duration_minutes,
                            requests: Vec::new(),
                        }),
                        len: 0,
                        owner: idx,
                        origin_shard: shard,
                        accounted: false,
                    },
                );
                let mut slot = slot;
                slot.owned.push(shard as u64);
                inner.slots.push(slot);
                idx
            };
            control.collectors.fetch_add(1, Ordering::AcqRel);
            scope.spawn(move || {
                collect_agent(control, idx, reader);
                control.collectors.fetch_sub(1, Ordering::AcqRel);
            });
        }
        Err(e) => {
            control
                .inner
                .lock()
                .unwrap()
                .abort_reasons
                .push(format!("spare admission from {peer} failed: {e}"));
        }
    }
}

/// Drain one agent's stream until `Done` or death. The socket carries the
/// liveness lease as its read timeout, so the three loss modes resolve
/// distinguishably: timeout = stall, EOF/reset = crash, `Abort` frame =
/// agent abort (with its reason).
fn collect_agent(control: &Control<'_>, idx: usize, mut reader: BufReader<TcpStream>) {
    let lease = Duration::from_millis(control.cfg.lease_ms.max(100));
    reader.get_ref().set_read_timeout(Some(lease)).ok();
    loop {
        match read_frame(&mut reader) {
            Ok(Some(FleetMessage::Progress { snapshot, prefixes, lag_ms, max_lag_ms, .. })) => {
                control.on_progress(idx, snapshot, prefixes, lag_ms, max_lag_ms);
            }
            Ok(Some(FleetMessage::ReassignAck { .. })) => {} // liveness via the frame itself
            Ok(Some(FleetMessage::Done { run_start_wall_us, metrics, events, .. })) => {
                let snapshot = snapshot_of(&metrics);
                control.on_progress(idx, snapshot, Vec::new(), 0, 0);
                control.on_done(idx, AgentOutcome { run_start_wall_us, metrics, events });
                return;
            }
            Ok(Some(FleetMessage::Abort { reason })) => {
                control.on_dead(idx, "abort", Some(reason));
                return;
            }
            Ok(Some(_)) => {} // stray frame; still proof of life
            Ok(None) => {
                control.on_dead(idx, "crash", None);
                return;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                control.on_dead(idx, "stall", None);
                return;
            }
            Err(_) => {
                control.on_dead(idx, "crash", None);
                return;
            }
        }
    }
}

/// Project the control plane's slots onto the console's per-agent rows.
fn agent_states(slots: &[Slot]) -> Vec<AgentState> {
    slots
        .iter()
        .map(|s| AgentState {
            name: s.name.clone(),
            shard: s.shard,
            status: match &s.status {
                SlotStatus::Live => "live".to_string(),
                SlotStatus::Done => "done".to_string(),
                SlotStatus::Dead(reason) => reason.clone(),
            },
            rejoined: s.rejoined,
            granted: s.granted,
            lag_ms: s.lag_ms,
            max_lag_ms: s.max_lag_ms,
            issued: s.last_progress.issued,
            completed: s.last_progress.completed,
            errors: s.last_progress.errors_total(),
            shed: s.last_progress.errors[3],
        })
        .collect()
}

/// Project final metrics back onto the progress-snapshot shape so a
/// completed agent's `last_progress` agrees with its metrics.
fn snapshot_of(m: &RunMetrics) -> Snapshot {
    let mut s = Snapshot {
        issued: m.issued,
        completed: m.completed,
        errors: [m.app_errors, m.timeouts, m.transport_errors, m.shed],
        cold_starts: m.cold_starts,
        ..Snapshot::default()
    };
    s.response.merge(&m.response);
    s
}

/// A lost shard's contribution under `reshard: false`: everything its
/// last snapshot says *finished*. In-flight and never-dispatched requests
/// are excluded (the report books them as aborted), so the fleet-wide
/// outcome partition stays exact.
fn metrics_from_snapshot(s: &Snapshot) -> RunMetrics {
    let mut m = RunMetrics::new();
    m.completed = s.completed;
    m.app_errors = s.errors[0];
    m.timeouts = s.errors[1];
    m.transport_errors = s.errors[2];
    m.shed = s.errors[3];
    m.errors = s.errors_total();
    m.issued = s.completed + s.errors_total();
    m.cold_starts = s.cold_starts;
    m.response.merge(&s.response);
    m.aborted = true;
    m
}

fn merge_fleet(
    inner: Inner,
    shards: u32,
    offered: u64,
    epoch_us: u64,
    cfg: &FleetConfig,
) -> FleetReport {
    let mut metrics = inner.salvaged;
    let mut agents = Vec::with_capacity(inner.slots.len());
    let mut logs: Vec<Vec<TelemetryEvent>> = Vec::new();
    let mut max_lag_ms = 0;
    for slot in inner.slots {
        let completed = slot.outcome.is_some();
        max_lag_ms = max_lag_ms.max(slot.max_lag_ms);
        match (&slot.status, slot.outcome) {
            (_, Some(out)) => {
                metrics.merge(&out.metrics);
                if !out.events.is_empty() {
                    logs.push(rebase_events(
                        out.events,
                        out.run_start_wall_us,
                        slot.offset.offset_us,
                        epoch_us,
                    ));
                }
            }
            (SlotStatus::Dead(_), None) if !cfg.reshard => {
                // Pre-elastic accounting: last snapshot only.
                metrics.merge(&metrics_from_snapshot(&slot.last_progress));
            }
            // Resharding runs salvage dead slots' work at death time
            // (already in `inner.salvaged`); an operator abort without a
            // delivered Done degrades to the same snapshot accounting.
            (SlotStatus::Dead(_), None) => {}
            (_, None) => {}
        }
        let status = match &slot.status {
            SlotStatus::Done => "done".to_string(),
            SlotStatus::Live => "live".to_string(),
            SlotStatus::Dead(reason) => reason.clone(),
        };
        agents.push(AgentReport {
            name: slot.name,
            shard: slot.shard,
            assigned: slot.assigned,
            completed,
            status,
            granted: slot.granted,
            rejoined: slot.rejoined,
            lag_ms: slot.lag_ms,
            max_lag_ms: slot.max_lag_ms,
            clock: slot.offset,
            last_progress: slot.last_progress,
        });
    }
    let finished = metrics.completed + metrics.errors;
    let aborted_invocations = offered.saturating_sub(finished);
    if aborted_invocations > 0 {
        metrics.aborted = true;
    }

    if !inner.reassignments.is_empty() {
        logs.push(inner.reassignments.iter().cloned().map(TelemetryEvent::Reassign).collect());
    }
    let events = merge_event_logs(&logs);
    let run_report =
        (cfg.capture_events && !events.is_empty()).then(|| RunReport::from_events(&events));
    FleetReport {
        shards,
        offered,
        aborted_invocations,
        metrics,
        agents,
        reassignments: inner.reassignments,
        abort_reasons: inner.abort_reasons,
        max_lag_ms,
        aborted_per_minute: cfg.reshard.then_some(inner.aborted_per_minute),
        run_report,
        events,
        build: faasrail_telemetry::BuildInfo::current(),
        console_history: None,
    }
}

/// Shift one agent's run-relative span timestamps onto the fleet epoch:
/// the agent's t=0 sits `(run_start_wall_us − offset) − epoch` after the
/// epoch in coordinator time, so all agents' spans land on one comparable
/// timeline before the logs merge.
fn rebase_events(
    mut events: Vec<TelemetryEvent>,
    run_start_wall_us: u64,
    offset_us: f64,
    epoch_us: u64,
) -> Vec<TelemetryEvent> {
    let start_coord_us = run_start_wall_us as i64 - offset_us.round() as i64;
    let shift = start_coord_us - epoch_us as i64;
    let adj = |t: u64| (t as i64 + shift).max(0) as u64;
    for event in &mut events {
        if let TelemetryEvent::Invocation(span) = event {
            span.target_us = adj(span.target_us);
            span.dispatched_us = adj(span.dispatched_us);
            span.picked_up_us = adj(span.picked_up_us);
            span.completed_us = adj(span.completed_us);
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_projection_matches_metrics() {
        let mut m = RunMetrics::new();
        m.issued = 10;
        m.completed = 7;
        m.errors = 3;
        m.app_errors = 1;
        m.timeouts = 2;
        m.cold_starts = 4;
        m.response.record(0.050);
        let s = snapshot_of(&m);
        assert_eq!(s.issued, 10);
        assert_eq!(s.completed, 7);
        assert_eq!(s.errors, [1, 2, 0, 0]);
        assert_eq!(s.cold_starts, 4);
        assert_eq!(s.response.total(), 1);
    }

    #[test]
    fn lost_shard_counts_only_finished_work() {
        let s = Snapshot {
            issued: 100, // 20 in flight when the agent died
            completed: 70,
            errors: [4, 3, 2, 1],
            ..Snapshot::default()
        };
        let m = metrics_from_snapshot(&s);
        assert_eq!(m.issued, 80, "in-flight requests are not counted as issued");
        assert_eq!(m.completed + m.errors, 80);
        assert!(m.aborted);
        assert_eq!(m.app_errors + m.timeouts + m.transport_errors + m.shed, m.errors);
    }

    #[test]
    fn rebase_applies_offset_and_clamps() {
        assert_eq!(rebase(1_000_000, 250.0), 1_000_250);
        assert_eq!(rebase(1_000_000, -250.4), 999_750);
        assert_eq!(rebase(100, -1e9), 0, "pathological offsets clamp instead of wrapping");
    }

    #[test]
    fn rebase_events_shifts_invocation_spans_only() {
        use faasrail_telemetry::{InvocationSpan, OutcomeClass, RunSummary};
        let span = InvocationSpan {
            trace_id: 1,
            seq: 0,
            workload: 0,
            function_index: 0,
            scheduled_ms: 0,
            target_us: 1_000,
            dispatched_us: 1_100,
            picked_up_us: 1_200,
            completed_us: 1_300,
            service_ms: 0.1,
            outcome: OutcomeClass::Ok,
            cold_start: false,
            error: None,
        };
        let end = RunSummary { issued: 1, completed: 1, errors: 0, aborted: false, wall_us: 9 };
        let events = vec![TelemetryEvent::Invocation(span), TelemetryEvent::RunEnd(end)];
        // Agent clock runs 500us ahead; run_start_wall_us = 10_500 on the
        // agent clock is 10_000 coordinator time, epoch at 8_000 → shift
        // = +2_000.
        let out = rebase_events(events, 10_500, 500.0, 8_000);
        match &out[0] {
            TelemetryEvent::Invocation(s) => {
                assert_eq!(s.target_us, 3_000);
                assert_eq!(s.dispatched_us, 3_100);
                assert_eq!(s.picked_up_us, 3_200);
                assert_eq!(s.completed_us, 3_300);
            }
            other => panic!("expected invocation span, got {other:?}"),
        }
        match &out[1] {
            TelemetryEvent::RunEnd(e) => assert_eq!(e.wall_us, 9, "run_end is untouched"),
            other => panic!("expected run_end, got {other:?}"),
        }
    }
}

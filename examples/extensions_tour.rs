//! A tour of the beyond-the-paper extensions (DESIGN.md §4b), each of which
//! implements one of the paper's §3.3 "next steps".
//!
//! Run with: `cargo run --release --example extensions_tour`

use faasrail::core::subminute::fit_iat_model;
use faasrail::prelude::*;
use faasrail::stats::ecdf::WeightedEcdf;
use faasrail::stats::{ks_distance_weighted, wasserstein1};
use faasrail::trace::azure::{generate as gen_azure, AzureTraceConfig};
use faasrail::trace::huawei::{generate as gen_huawei, HuaweiTraceConfig};
use faasrail::trace::summarize::invocations_duration_wecdf;

fn main() {
    let trace = gen_azure(&AzureTraceConfig::scaled(21, 1_200, 1_200_000));
    let model = CostModel::default_calibration();
    let pool = WorkloadPool::build_modelled(&model);

    // 1. Memory-aware mapping: duration fidelity flat, memory fidelity up.
    println!("1) memory-aware mapping (§3.3 'Memory usage')");
    let agg = faasrail::core::aggregate(&trace, faasrail::core::DurationResolution::Millisecond);
    let mem_target = WeightedEcdf::new(
        agg.functions
            .iter()
            .filter(|f| f.total_invocations() > 0)
            .map(|f| (f.memory_mb, f.total_invocations() as f64)),
    );
    for weight in [0.0, 0.5] {
        let cfg = MappingConfig { memory_weight: weight, ..Default::default() };
        let m = faasrail::core::map_functions(&agg, &pool, &cfg);
        let mapped_mem = WeightedEcdf::new(m.assignments.iter().map(|a| {
            (
                pool.get(a.workload).unwrap().memory_mb,
                agg.functions[a.function_index as usize].total_invocations() as f64,
            )
        }));
        println!(
            "   weight {weight}: duration err {:.2}%, memory W1 {:.0} MiB",
            m.stats.weighted_rel_error * 100.0,
            wasserstein1(&mem_target, &mapped_mem)
        );
    }

    // 2. Variable inputs: rotate same-benchmark alternates per invocation.
    println!("2) variable inputs per Function (§3.3 'Fixed input')");
    let mut cfg = ShrinkRayConfig::new(10, 10.0);
    cfg.max_alternates = 3;
    let (spec, _) = shrink(&trace, &pool, &cfg).expect("shrink");
    let with_alts = spec.entries.iter().filter(|e| !e.alternates.is_empty()).count();
    println!(
        "   {}/{} spec entries carry alternates; request generation rotates them",
        with_alts,
        spec.entries.len()
    );

    // 3. Trace-fit sub-minute burstiness (§3.3 'Sub-minute behavior').
    println!("3) sub-minute model fitted from the trace");
    let huawei = gen_huawei(&HuaweiTraceConfig::small(21));
    for (name, t) in [("azure", &trace), ("huawei", &huawei)] {
        let fit = fit_iat_model(t, 0.35);
        println!(
            "   {name}: measured burst CV {:.2} over {} functions → {:?}",
            fit.cv, fit.functions_measured, fit.model
        );
    }

    // 4. Extended pool (§3.3 'more benchmarking suites').
    println!("4) auxiliary benchmark suite");
    let extended = WorkloadPool::build_modelled_extended(&model);
    println!(
        "   pool grows {} → {} workloads across {} benchmarks",
        pool.len(),
        extended.len(),
        extended.counts_by_kind().len()
    );
    let target = invocations_duration_wecdf(&trace);
    for (name, p) in [("functionbench", &pool), ("extended", &extended)] {
        let m = faasrail::core::map_functions(&agg, p, &MappingConfig::default());
        let mapped = WeightedEcdf::new(m.assignments.iter().map(|a| {
            (
                p.get(a.workload).unwrap().mean_ms,
                agg.functions[a.function_index as usize].total_invocations() as f64,
            )
        }));
        println!(
            "   {name}: mapped KS {:.4}, weighted err {:.2}%",
            ks_distance_weighted(&target, &mapped),
            m.stats.weighted_rel_error * 100.0
        );
    }

    // 5. Predictive prewarming in the simulator.
    println!("5) hybrid-histogram keep-alive with prewarming");
    use faasrail::sim::{HybridHistogram, RoundRobin};
    let reqs = {
        // A periodic workload: one invocation a minute for an hour.
        faasrail::core::RequestTrace {
            duration_minutes: 60,
            requests: (0..60u64)
                .map(|i| faasrail::core::Request {
                    at_ms: i * 60_000,
                    workload: faasrail::workloads::WorkloadId(7),
                    function_index: 0,
                })
                .collect(),
        }
    };
    let cluster = ClusterConfig::single_node(4, 4_096.0);
    for (name, prewarm) in [("plain hybrid", false), ("with prewarming", true)] {
        let mut ka =
            if prewarm { HybridHistogram::new().with_prewarming() } else { HybridHistogram::new() };
        let mut lb = RoundRobin::default();
        let m = simulate(&reqs, &pool, &cluster, &mut lb, &mut ka, &SimOptions::default());
        println!(
            "   {name}: {} cold starts, {} prewarms, mean idle warm memory {:.0} MiB",
            m.cold_starts,
            m.prewarms,
            m.mean_idle_memory_mb()
        );
    }
}

//! Cluster-scheduling research demo: load balancers under FaaSRail load.
//!
//! Paper §2.2, "Cluster-level policies": schedulers are affected by runtime
//! distributions, function popularity, *and* arrival rates — so they should
//! be evaluated under load preserving all three. This example compares four
//! load balancers on the same FaaSRail-generated request trace.
//!
//! Run with: `cargo run --release --example scheduler_study`

use faasrail::prelude::*;
use faasrail::sim::{FixedTtl, HashAffinity, LeastLoaded, LoadBalancer, RoundRobin, WarmFirst};
use faasrail::trace::azure::{generate as generate_trace, AzureTraceConfig};

fn main() {
    let trace = generate_trace(&AzureTraceConfig::scaled(11, 1_500, 2_000_000));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    // ~8 rps against 64 cores: FaaS-typical utilization, so differences come
    // from placement rather than raw overload.
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(15, 8.0)).expect("shrink");
    let load = generate_requests(&spec, 3);
    println!("load: {} requests over {} minutes", load.len(), load.duration_minutes);

    let cluster = ClusterConfig { nodes: 8, cores_per_node: 8, ..Default::default() };
    let balancers: Vec<(&str, Box<dyn LoadBalancer>)> = vec![
        ("round-robin", Box::new(RoundRobin::default())),
        ("least-loaded", Box::new(LeastLoaded)),
        ("warm-first", Box::new(WarmFirst)),
        ("hash-affinity", Box::new(HashAffinity)),
    ];

    println!();
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>8} {:>10}",
        "balancer", "cold %", "p50 ms", "p99 ms", "max queue", "util %", "imbalance"
    );
    println!("{:-<82}", "");
    for (name, mut lb) in balancers {
        let mut ka = FixedTtl::ten_minutes();
        let m = simulate(&load, &pool, &cluster, lb.as_mut(), &mut ka, &SimOptions::default());
        println!(
            "{:<14} {:>9.2}% {:>10.1} {:>12.1} {:>12} {:>7.1}% {:>9.2}x",
            name,
            m.cold_start_fraction() * 100.0,
            m.response.quantile(0.50) * 1_000.0,
            m.response.quantile(0.99) * 1_000.0,
            m.max_queue,
            m.utilization() * 100.0,
            m.imbalance(),
        );
    }

    println!();
    println!(
        "Warm-first trades balance for locality (fewest cold starts); hash affinity\n\
         concentrates skewed functions and can hot-spot — exactly the trade-offs\n\
         that only show up under representative popularity and arrival patterns."
    );
}

//! Quickstart: trace → shrink ray → request trace → simulated cluster.
//!
//! Generates a small Azure-profile trace, shrinks it to a 10-minute
//! experiment capped at 10 requests/second, expands the spec into a
//! timestamped request stream, and runs it through the discrete-event FaaS
//! cluster simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use faasrail::prelude::*;
use faasrail::sim::{FixedTtl, LeastLoaded};
use faasrail::trace::azure::{generate as generate_trace, AzureTraceConfig};

fn main() {
    // 1. Input trace: a synthetic Azure-profile day (1 000 functions,
    //    ~1 M invocations). Swap in `faasrail::trace::loader::load_azure_day`
    //    if you have the real dataset.
    let trace = generate_trace(&AzureTraceConfig::scaled(42, 1_000, 1_000_000));
    println!(
        "trace: {} functions, {} invocations on day {}",
        trace.functions.len(),
        trace.total_invocations(),
        trace.selected_day + 1
    );

    // 2. The augmented Workload pool (ten FunctionBench-style kernels ×
    //    ~2 300 inputs).
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    println!("pool: {} workloads from 10 benchmarks", pool.len());

    // 3. Shrink: 10-minute experiment, at most 10 requests/second.
    let cfg = ShrinkRayConfig::new(10, 10.0);
    let (spec, report) = shrink(&trace, &pool, &cfg).expect("shrink ray");
    println!(
        "shrink ray: {} functions aggregated to {}, mapped with {:.1}% weighted error; \
         {} requests over {} minutes (peak {}/min)",
        report.trace_functions,
        report.aggregated_functions,
        report.mapping.weighted_rel_error * 100.0,
        spec.total_requests(),
        spec.duration_minutes,
        spec.peak_per_minute()
    );

    // 4. Expand into a timestamped request trace (Poisson sub-minute
    //    arrivals) and replay it on the simulated cluster.
    let requests = generate_requests(&spec, 7);
    let mut balancer = LeastLoaded;
    let mut keepalive = FixedTtl::ten_minutes();
    let metrics = simulate(
        &requests,
        &pool,
        &ClusterConfig::default(),
        &mut balancer,
        &mut keepalive,
        &SimOptions::default(),
    );
    println!(
        "simulation: {} completions, {:.1}% cold starts, p50 response {:.0} ms, \
         p99 response {:.0} ms, mean idle warm memory {:.0} MiB",
        metrics.completions,
        metrics.cold_start_fraction() * 100.0,
        metrics.response.quantile(0.50) * 1_000.0,
        metrics.response.quantile(0.99) * 1_000.0,
        metrics.mean_idle_memory_mb()
    );
}

//! Real-time replay: actually *running* the workload kernels under
//! FaaSRail pacing against a warm-cache FaaS node.
//!
//! Everything here is wall-clock real: the open-loop pacer dispatches at
//! the scheduled instants (time-compressed 10×), the backend executes the
//! mapped kernel (AES, matmul, JSON, …) and charges real cold-start delays.
//!
//! Run with: `cargo run --release --example replay_realtime`

use faasrail::prelude::*;
use faasrail::sim::{ColdStartModel, WarmCacheBackend, WarmCacheConfig};
use faasrail::trace::huawei::{generate as generate_trace, HuaweiTraceConfig};
use std::time::{Duration, Instant};

fn main() {
    // Huawei profile: sub-2 s workloads, so really *executing* the mapped
    // kernels stays snappy. (An Azure-profile replay works identically but
    // its invocation mix legitimately contains multi-second kernels, so
    // budget minutes of compute for it.)
    let trace = generate_trace(&HuaweiTraceConfig::small(9));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());

    // A 2-minute experiment at ≤ 10 rps, replayed 4× faster (~30 s wall).
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(2, 10.0)).expect("shrink");
    let requests = generate_requests(&spec, 2);
    println!(
        "replaying {} requests ({} experiment minutes) at 4x compression...",
        requests.len(),
        requests.duration_minutes
    );

    let backend = WarmCacheBackend::new(
        pool.clone(),
        WarmCacheConfig {
            capacity_mb: 4_096.0,
            ttl: Duration::from_secs(60),
            cold_start: ColdStartModel::snapshot(),
            cold_scale: 0.25, // scale slept cold delays with the compression
            execute_kernels: true,
        },
    );

    let started = Instant::now();
    let metrics = replay(
        &requests,
        &pool,
        &backend,
        &ReplayConfig { pacing: Pacing::RealTime { compression: 4.0 }, workers: 8 },
    );
    let wall = started.elapsed();

    println!(
        "done in {:.1}s wall clock: {} completed, {} cold starts ({:.1}%)",
        wall.as_secs_f64(),
        metrics.completed,
        metrics.cold_starts,
        metrics.cold_starts as f64 / metrics.completed.max(1) as f64 * 100.0
    );
    println!(
        "service times: p50 {:.2} ms, p99 {:.2} ms (real kernel execution)",
        metrics.service.quantile(0.50) * 1_000.0,
        metrics.service.quantile(0.99) * 1_000.0
    );
    println!(
        "dispatch lateness: p50 {:.3} ms, p99 {:.3} ms (pacing accuracy)",
        metrics.lateness.quantile(0.50) * 1_000.0,
        metrics.lateness.quantile(0.99) * 1_000.0
    );
    println!(
        "response (incl. queueing): p50 {:.2} ms, p99 {:.2} ms",
        metrics.response_quantile_ms(0.50),
        metrics.response_quantile_ms(0.99)
    );
}

//! Smirnov-Transform mode: distribution-faithful load at an arbitrary rate.
//!
//! When the study needs a *tunable* load pattern (fixed rate, chosen IAT
//! distribution) but still wants invocation runtimes that follow a
//! production trace, FaaSRail's Smirnov mode samples durations from the
//! trace's invocation-weighted ECDF by inverse transform sampling and maps
//! them to real workloads.
//!
//! Run with: `cargo run --release --example smirnov_mode`

use faasrail::core::smirnov;
use faasrail::prelude::*;
use faasrail::stats::ecdf::WeightedEcdf;
use faasrail::stats::ks_distance_weighted;
use faasrail::trace::summarize::invocations_duration_wecdf;
use faasrail::trace::{azure, huawei};

fn study(name: &str, trace: &faasrail::trace::Trace, pool: &WorkloadPool) {
    let cfg = SmirnovConfig {
        num_invocations: 30_000,
        rate_rps: 100.0,
        iat: IatModel::Poisson,
        mapping: MappingConfig::default(),
        seed: 5,
    };
    let (requests, report) = smirnov::generate(trace, pool, &cfg);

    let target = invocations_duration_wecdf(trace);
    let achieved =
        WeightedEcdf::new(requests.expected_durations(pool).into_iter().map(|d| (d, 1.0)));
    println!(
        "{name}: {} requests over {} min; KS(trace, generated) = {:.4}; \
         {:.1}% mapped within threshold",
        requests.len(),
        requests.duration_minutes,
        ks_distance_weighted(&target, &achieved),
        report.within_threshold_fraction * 100.0
    );
    println!("  requests per benchmark:");
    let total: u64 = report.counts_by_kind.values().sum();
    for (kind, count) in &report.counts_by_kind {
        println!("    {:<18} {:>6.2}%", kind.name(), *count as f64 / total as f64 * 100.0);
    }
}

fn main() {
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());

    let azure = azure::generate(&azure::AzureTraceConfig::scaled(3, 1_000, 1_000_000));
    study("azure", &azure, &pool);

    let huawei = huawei::generate(&huawei::HuaweiTraceConfig::small(3));
    study("huawei-private", &huawei, &pool);
}

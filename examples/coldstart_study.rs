//! Cold-start research demo: keep-alive policies under *representative*
//! load vs a plain-Poisson baseline.
//!
//! The paper's motivation in one experiment: a load that follows
//! non-representative runtime/popularity distributions "can overestimate
//! the cold-start overheads of a realistic load and lead [to] biased
//! research on function caching". We evaluate three keep-alive policies
//! under (a) FaaSRail-generated load and (b) the common plain-Poisson
//! baseline, on the same cluster — and show the baseline distorts both the
//! cold-start rate and the policy ranking inputs.
//!
//! Run with: `cargo run --release --example coldstart_study`

use faasrail::baselines::poisson_emulation::{self, PoissonEmulationConfig};
use faasrail::prelude::*;
use faasrail::sim::{FixedTtl, GreedyDual, KeepAlivePolicy, LruPolicy, SimMetrics, WarmFirst};
use faasrail::trace::azure::{generate as generate_trace, AzureTraceConfig};

type PolicyFactory = fn() -> Box<dyn KeepAlivePolicy>;

fn run(
    requests: &RequestTrace,
    pool: &WorkloadPool,
    mut policy: Box<dyn KeepAlivePolicy>,
) -> SimMetrics {
    let mut balancer = WarmFirst;
    let cluster = ClusterConfig { nodes: 4, cores_per_node: 16, ..Default::default() };
    simulate(requests, pool, &cluster, &mut balancer, policy.as_mut(), &SimOptions::default())
}

fn main() {
    let trace = generate_trace(&AzureTraceConfig::scaled(7, 1_500, 1_500_000));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());

    // Representative load: FaaSRail Spec mode, 20 minutes at ≤ 10 rps.
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(20, 10.0)).expect("shrink");
    let faasrail_load = generate_requests(&spec, 1);

    // Baseline: plain Poisson at the same average rate over the vanilla
    // suite (the common practice the paper criticizes).
    let vanilla = WorkloadPool::vanilla(&CostModel::default_calibration());
    let rate = faasrail_load.len() as f64 / (20.0 * 60.0);
    let baseline_load = poisson_emulation::generate(
        &vanilla,
        &PoissonEmulationConfig { rate_rps: rate, duration_minutes: 20, seed: 1 },
    );

    println!(
        "load: faasrail {} reqs, baseline {} reqs @ {rate:.1} rps",
        faasrail_load.len(),
        baseline_load.len()
    );
    println!();
    println!("{:<14} {:>22} {:>22}", "policy", "faasrail load", "plain-poisson load");
    println!("{:-<60}", "");

    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("fixed-ttl", || Box::new(FixedTtl::ten_minutes())),
        ("lru", || Box::new(LruPolicy)),
        ("greedy-dual", || Box::new(GreedyDual)),
    ];

    for (name, mk) in &policies {
        let m_rail = run(&faasrail_load, &pool, mk());
        let m_base = run(&baseline_load, &vanilla, mk());
        println!(
            "{:<14} {:>9.2}% cold {:>6.0}MB {:>9.2}% cold {:>6.0}MB",
            name,
            m_rail.cold_start_fraction() * 100.0,
            m_rail.mean_idle_memory_mb(),
            m_base.cold_start_fraction() * 100.0,
            m_base.mean_idle_memory_mb(),
        );
    }

    println!();
    println!(
        "Note how the baseline's 10 equally-popular functions produce a cold-start\n\
         profile unlike the skewed, heavy-tailed FaaSRail load — the bias the paper\n\
         warns about when evaluating caching policies on synthetic load."
    );
}

//! # FaaSRail
//!
//! A from-scratch Rust implementation of **FaaSRail** (HPDC '24): a load
//! generator for serverless research that fits real, open-source FaaS
//! workloads to production workload traces while preserving the traces'
//! critical statistical properties — the distribution of function execution
//! durations, the skewed popularity of functions, the distribution of
//! invocation execution durations, and the arrival rates of invocations.
//!
//! This is the umbrella crate: it re-exports the workspace's components.
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`stats`] | `faasrail-stats` | ECDFs, samplers, distances, time series |
//! | [`trace`] | `faasrail-trace` | Trace model, synthetic Azure/Huawei generators, loaders |
//! | [`workloads`] | `faasrail-workloads` | Ten FunctionBench-equivalent kernels + the augmented pool |
//! | [`core`] | `faasrail-core` | The shrink ray: aggregation, mapping, scaling, Smirnov mode |
//! | [`loadgen`] | `faasrail-loadgen` | Open-loop real-time replayer |
//! | [`gateway`] | `faasrail-gateway` | Networked invocation gateway: HTTP server + client backend |
//! | [`telemetry`] | `faasrail-telemetry` | Event spans, live windowed metrics, Prometheus export, run reports |
//! | [`sim`] | `faasrail-faas-sim` | Discrete-event FaaS cluster + warm-cache backend |
//! | [`baselines`] | `faasrail-baselines` | Prior-work load generators (Fig. 1 comparators) |
//! | [`fleet`] | `faasrail-fleet` | Sharded multi-process load generation (coordinator/agents) |
//! | [`lab`] | `faasrail-lab` | Parallel experiment-grid runner over the simulator |
//!
//! ## Quickstart
//!
//! ```
//! use faasrail::prelude::*;
//!
//! // 1. A production-like trace (synthetic Azure profile) and the pool.
//! let trace = faasrail::trace::azure::generate(
//!     &faasrail::trace::azure::AzureTraceConfig::scaled(42, 300, 100_000));
//! let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
//!
//! // 2. Shrink to a 10-minute, max 5 rps experiment.
//! let cfg = ShrinkRayConfig::new(10, 5.0);
//! let (spec, report) = shrink(&trace, &pool, &cfg).unwrap();
//! assert!(spec.peak_per_minute() <= 300);
//! assert!(report.mapping.weighted_rel_error < 0.2);
//!
//! // 3. Expand to a timestamped request trace and inspect it.
//! let requests = generate_requests(&spec, 7);
//! assert!(!requests.is_empty());
//! ```

pub use faasrail_baselines as baselines;
pub use faasrail_core as core;
pub use faasrail_faas_sim as sim;
pub use faasrail_fleet as fleet;
pub use faasrail_gateway as gateway;
pub use faasrail_lab as lab;
pub use faasrail_loadgen as loadgen;
pub use faasrail_stats as stats;
pub use faasrail_telemetry as telemetry;
pub use faasrail_trace as trace;
pub use faasrail_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use faasrail_core::{
        generate_requests, shrink, ExperimentSpec, IatModel, MappingConfig, RequestTrace,
        ShrinkRayConfig, SmirnovConfig, TimeScaling,
    };
    pub use faasrail_faas_sim::{simulate, ClusterConfig, SimOptions};
    pub use faasrail_gateway::{Gateway, GatewayConfig, HttpBackend, HttpBackendConfig};
    pub use faasrail_loadgen::{replay, Backend, Pacing, ReplayConfig};
    pub use faasrail_telemetry::{EventSink, InvocationSpan, OutcomeClass, TelemetryEvent};
    pub use faasrail_trace::{Trace, TraceKind};
    pub use faasrail_workloads::{CostModel, WorkloadInput, WorkloadKind, WorkloadPool};
}

#!/usr/bin/env python3
"""Plot the figure CSVs produced by the faasrail-bench binaries.

Usage:
    scripts/plot.py results/fig06.csv [-o fig06.png]

Each CSV holds `series,x,y` rows (plus `#` comments). CDF figures are drawn
with a log-x axis automatically when the x-range spans >2 decades; series
named `*_minute`/`minute`-indexed files are drawn as lines over time.

Requires matplotlib (`pip install matplotlib`); everything else in this
repository is dependency-free Rust — plotting is deliberately out of band.
"""

import argparse
import collections
import math
import sys


def load(path):
    series = collections.OrderedDict()
    header = None
    comments = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                comments.append(line[1:].strip())
                continue
            parts = line.split(",")
            if header is None and not _is_float(parts[-1]):
                header = parts
                continue
            # tolerate sections with repeated headers
            if not _is_float(parts[-1]):
                continue
            name = parts[0]
            try:
                x, y = float(parts[-2]), float(parts[-1])
            except ValueError:
                continue
            series.setdefault(name, ([], []))
            series[name][0].append(x)
            series[name][1].append(y)
    return series, comments


def _is_float(s):
    try:
        float(s)
        return True
    except ValueError:
        return False


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("csv")
    ap.add_argument("-o", "--output", default=None)
    ap.add_argument("--title", default=None)
    args = ap.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    series, comments = load(args.csv)
    if not series:
        sys.exit(f"no data rows found in {args.csv}")

    fig, ax = plt.subplots(figsize=(7, 4.2))
    xmin = min(min(xs) for xs, _ in series.values() if xs)
    xmax = max(max(xs) for xs, _ in series.values() if xs)
    logx = xmin > 0 and xmax / max(xmin, 1e-12) > 100

    for name, (xs, ys) in series.items():
        ax.plot(xs, ys, label=name, linewidth=1.4)
    if logx:
        ax.set_xscale("log")
    ax.grid(alpha=0.3)
    ax.legend(fontsize=8)
    title = args.title or (comments[0] if comments else args.csv)
    ax.set_title(title, fontsize=10)
    ymax = max(max(ys) for _, ys in series.values() if ys)
    if ymax <= 1.01:
        ax.set_ylim(0, 1.02)
        ax.set_ylabel("CDF / fraction")

    out = args.output or args.csv.rsplit(".", 1)[0] + ".png"
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Extract the `#`-comment summaries from results/*.csv into a compact
paper-vs-measured digest (results/SUMMARY.txt). EXPERIMENTS.md cites these
numbers; regenerate with scripts/reproduce.sh and re-run this script to
refresh the digest after changing generators or the pipeline."""

import glob
import os

os.chdir(os.path.join(os.path.dirname(__file__), ".."))
lines = []
for path in sorted(glob.glob("results/*.csv")):
    lines.append(f"== {os.path.basename(path)} ==")
    with open(path) as f:
        for line in f:
            if line.startswith("#"):
                lines.append("  " + line[1:].strip())
with open("results/SUMMARY.txt", "w") as f:
    f.write("\n".join(lines) + "\n")
print(f"wrote results/SUMMARY.txt ({len(lines)} lines)")

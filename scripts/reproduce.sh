#!/usr/bin/env bash
# Regenerate every paper table/figure at full paper scale, refresh
# results/*.csv, and run the self-verifying reproduction audit.
#
# Usage: scripts/reproduce.sh [small|paper]   (default: paper)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-paper}"
export FAASRAIL_SCALE="$SCALE"
echo "== building (release) =="
cargo build --release -p faasrail-bench --bins

mkdir -p results
BINS=(table1 fig01 fig03 fig04 fig06 fig07 fig08 fig09 fig10 fig11 fig12 \
      abl_threshold abl_balance abl_timescaling abl_memory abl_burstiness \
      abl_suites abl_loop_mode)
for bin in "${BINS[@]}"; do
    echo "== $bin ($SCALE scale) =="
    ./target/release/"$bin" > "results/$bin.csv"
    grep '^#' "results/$bin.csv" | sed 's/^/   /'
done

echo "== reproduction audit =="
./target/release/check_repro
